"""Canonical-JSONL trace files and their deterministic merge.

One trace file per process: a header line (worker name, ``time.time``
epoch, schema), one line per counter (sorted by name), one line per
span (in record order).  Every line is :func:`repro.utils.canonical_json`,
so a trace file's bytes are a pure function of the collected data.

:func:`merge_traces` combines per-worker files into one merged trace —
counters sum (order-independent), spans align on a shared timeline via
the epoch deltas and sort by ``(worker, index)`` — so the merged
structure is a pure function of the input files regardless of argument
order.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from ..utils import canonical_json
from .core import SpanRecord, Telemetry

__all__ = [
    "TRACE_SCHEMA",
    "merge_traces",
    "read_trace",
    "trace_files",
    "write_trace",
]

#: Version stamp on every trace header; bumped when the line shapes change.
TRACE_SCHEMA = 1

#: File-name pattern produced by the campaign runners: ``trace-main.jsonl``
#: plus ``trace-worker-<i>.jsonl`` per fabric worker.
_TRACE_GLOB = "trace-*.jsonl"


def write_trace(path: str | Path, telemetry: Telemetry) -> Path:
    """Write one collector's channels as a canonical-JSONL trace file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        canonical_json(
            {
                "epoch": telemetry.epoch,
                "kind": "header",
                "schema": TRACE_SCHEMA,
                "worker": telemetry.worker,
            }
        )
    ]
    for name, value in sorted(telemetry.counters.items()):
        lines.append(
            canonical_json({"kind": "counter", "name": name, "value": value})
        )
    for span in telemetry.spans:
        record = span.as_dict()
        record["kind"] = "span"
        lines.append(canonical_json(record))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_trace(path: str | Path) -> dict[str, Any]:
    """Parse one trace file back into header + counters + span dicts."""
    path = Path(path)
    lines = [line for line in path.read_text().splitlines() if line]
    if not lines:
        raise ValueError(f"empty trace file: {path}")
    header = json.loads(lines[0])
    if header.get("kind") != "header":
        raise ValueError(f"trace file without header line: {path}")
    counters: dict[str, int] = {}
    spans: list[dict[str, Any]] = []
    for line in lines[1:]:
        record = json.loads(line)
        kind = record.pop("kind", None)
        if kind == "counter":
            counters[record["name"]] = int(record["value"])
        elif kind == "span":
            spans.append(record)
        else:
            raise ValueError(f"unknown trace record kind {kind!r} in {path}")
    return {
        "counters": counters,
        "epoch": float(header["epoch"]),
        "schema": int(header["schema"]),
        "spans": spans,
        "worker": str(header["worker"]),
    }


def trace_files(trace_dir: str | Path) -> list[Path]:
    """The trace files under a directory, in sorted (deterministic) order."""
    return sorted(Path(trace_dir).glob(_TRACE_GLOB))


def merge_traces(paths: Sequence[str | Path]) -> dict[str, Any]:
    """Combine per-worker trace files into one deterministic structure.

    Counters sum across workers.  Spans keep their per-worker record
    order but move onto a shared timeline: each worker's offsets shift
    by its epoch delta against the earliest worker, so concurrent spans
    from different processes line up.  The result does not depend on
    the order of ``paths``.
    """
    if not paths:
        raise ValueError("no trace files to merge")
    traces = [read_trace(path) for path in paths]
    by_worker = {trace["worker"]: trace for trace in traces}
    if len(by_worker) != len(traces):
        names = sorted(trace["worker"] for trace in traces)
        raise ValueError(f"duplicate worker names across trace files: {names}")
    base = min(trace["epoch"] for trace in traces)
    counters: dict[str, int] = {}
    spans: list[dict[str, Any]] = []
    for worker in sorted(by_worker):
        trace = by_worker[worker]
        for name in sorted(trace["counters"]):
            counters[name] = counters.get(name, 0) + trace["counters"][name]
        offset = trace["epoch"] - base
        for span in trace["spans"]:
            spans.append(
                {
                    "attrs": span["attrs"],
                    "index": span["index"],
                    "name": span["name"],
                    "parent": span["parent"],
                    "t0": span["t0"] + offset,
                    "t1": span["t1"] + offset,
                    "worker": worker,
                }
            )
    return {
        "counters": {name: counters[name] for name in sorted(counters)},
        "schema": TRACE_SCHEMA,
        "spans": spans,
        "workers": sorted(by_worker),
    }


def span_record_from_dict(record: dict[str, Any]) -> SpanRecord:
    """A :class:`SpanRecord` from one parsed span line (test helper)."""
    return SpanRecord(
        index=int(record["index"]),
        parent=int(record["parent"]),
        name=str(record["name"]),
        t0=float(record["t0"]),
        t1=float(record["t1"]),
        attrs=dict(record["attrs"]),
    )
