"""The process-local collector: counter channel + span channel.

Design rules the rest of the stack relies on:

* ``TELEMETRY`` starts disabled; :meth:`Telemetry.count` and
  :meth:`Telemetry.span` are no-ops until :meth:`Telemetry.enable`
  runs.  Hot loops additionally guard on ``TELEMETRY.enabled`` so the
  disabled cost is a single branch (the no-op guard asserted by
  ``tests/test_telemetry.py``).
* Counters are exact integers merged by summation —
  order-independent, so snapshots collected from pool workers or
  fabric processes combine to the same totals regardless of completion
  order (NUM205-safe).
* Spans record ``time.perf_counter`` offsets relative to the
  collector's enable time plus a ``time.time`` epoch, so traces from
  different processes can be aligned on one timeline.  Span values are
  never read back by logic: the two channels only meet in trace files.

Counter taxonomy
----------------
*Contract* counters count work the partitioning cannot change: each
campaign point is evaluated by exactly one worker and stored exactly
once, so their totals are bit-identical across serial, ``n_jobs > 1``
and multi-worker fabric runs of the same spec.  Everything else
(cache hits, Howard rounds under warm starts, lease traffic ...) is
*diagnostic*: deterministic for a fixed execution plan, but legitimately
dependent on chunking and worker count.  Only contract counters may be
compared across partitionings or gated by ``run_all.py --compare``.
"""

from __future__ import annotations

import time
from collections.abc import Mapping
from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass, field
from types import TracebackType

__all__ = [
    "CONTRACT_COUNTERS",
    "TELEMETRY",
    "SpanRecord",
    "Telemetry",
    "contract_counters",
    "is_contract_counter",
]

#: Partition-invariant counter names: identical totals for serial,
#: ``n_jobs > 1`` and ``--workers N`` runs of one campaign spec.
CONTRACT_COUNTERS = frozenset(
    {
        "engine.points",
        "engine.paths",
        "store.puts",
        "store.quarantines",
    }
)

#: Per-method splits of ``engine.points`` are contract counters too:
#: the method choice is a pure function of the point.
_CONTRACT_PREFIXES = ("engine.points.",)


def is_contract_counter(name: str) -> bool:
    """Whether ``name`` belongs to the partition-invariant contract set."""
    return name in CONTRACT_COUNTERS or name.startswith(_CONTRACT_PREFIXES)


def contract_counters(counters: Mapping[str, int]) -> dict[str, int]:
    """The contract subset of a counter mapping, sorted by name."""
    return {
        name: counters[name]
        for name in sorted(counters)
        if is_contract_counter(name)
    }


@dataclass
class SpanRecord:
    """One closed wall-clock interval in a process's span tree.

    ``t0``/``t1`` are seconds relative to the collector's enable-time
    origin; ``parent`` is the index of the enclosing span (-1 at the
    top level).  ``attrs`` holds small deterministic annotations (row
    counts, worker indexes) — never timing values.
    """

    index: int
    parent: int
    name: str
    t0: float
    t1: float
    attrs: dict[str, float | int | str] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form with deterministically ordered attrs."""
        return {
            "attrs": {key: self.attrs[key] for key in sorted(self.attrs)},
            "index": self.index,
            "name": self.name,
            "parent": self.parent,
            "t0": self.t0,
            "t1": self.t1,
        }


class _Span(AbstractContextManager[None]):
    """Live span context: records its interval on the collector."""

    __slots__ = ("_attrs", "_name", "_record", "_telemetry")

    def __init__(
        self,
        telemetry: "Telemetry",
        name: str,
        attrs: dict[str, float | int | str],
    ) -> None:
        self._telemetry = telemetry
        self._name = name
        self._attrs = attrs
        self._record: SpanRecord | None = None

    def __enter__(self) -> None:
        telemetry = self._telemetry
        record = SpanRecord(
            index=len(telemetry.spans),
            parent=telemetry.stack[-1] if telemetry.stack else -1,
            name=self._name,
            t0=0.0,
            t1=0.0,
            attrs=self._attrs,
        )
        telemetry.spans.append(record)
        telemetry.stack.append(record.index)
        self._record = record
        record.t0 = time.perf_counter() - telemetry.origin

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        t1 = time.perf_counter()
        telemetry = self._telemetry
        record = self._record
        if record is not None:
            record.t1 = t1 - telemetry.origin
            telemetry.stack.pop()


#: Shared no-op context returned by ``span()`` while disabled: zero
#: allocation on the disabled path.
_NULL_SPAN: AbstractContextManager[None] = nullcontext()


class Telemetry:
    """Per-process collector for both channels.

    Use the module singleton :data:`TELEMETRY`; constructing private
    collectors is only useful in tests.
    """

    __slots__ = (
        "counters",
        "enabled",
        "epoch",
        "origin",
        "spans",
        "stack",
        "worker",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.worker = "main"
        self.epoch = 0.0
        self.origin = 0.0
        self.counters: dict[str, int] = {}
        self.spans: list[SpanRecord] = []
        self.stack: list[int] = []

    def enable(self, worker: str = "main") -> None:
        """Reset the collector and switch collection on.

        ``worker`` names this process in merged traces (``main``,
        ``worker-0`` ...).  Always called explicitly at process entry:
        forked pool workers inherit the parent's collector state, so
        every subprocess entry point either enables (fresh) or disables
        its copy before doing any work.
        """
        self.worker = worker
        self.counters = {}
        self.spans = []
        self.stack = []
        self.epoch = time.time()
        self.origin = time.perf_counter()
        self.enabled = True

    def disable(self) -> None:
        """Switch collection off (collected data stays readable)."""
        self.enabled = False

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (no-op while disabled)."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + n

    def merge_counters(self, other: Mapping[str, int]) -> None:
        """Sum a subprocess's counter snapshot into this collector."""
        if self.enabled:
            for name in sorted(other):
                self.counters[name] = self.counters.get(name, 0) + other[name]

    def span(
        self, name: str, **attrs: float | int | str
    ) -> AbstractContextManager[None]:
        """A context manager timing one named interval (no-op while disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def counter_snapshot(self) -> dict[str, int]:
        """Copy of the counter channel, sorted by name."""
        return {name: self.counters[name] for name in sorted(self.counters)}


#: The process-wide collector every instrumentation point guards on.
TELEMETRY = Telemetry()
