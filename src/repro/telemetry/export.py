"""Exporters over merged traces: summary, Chrome events, attribution.

All three consume the structure produced by
:func:`repro.telemetry.merge_traces`.  The Chrome exporter is lossless:
:func:`merged_from_chrome` reconstructs the merged trace exactly (the
exact ``t0``/``t1`` floats ride along in each event's ``args``, while
``ts``/``dur`` carry the microsecond values Perfetto wants), which CI
asserts as a round-trip.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from .core import is_contract_counter
from .trace import TRACE_SCHEMA

__all__ = [
    "attribution",
    "chrome_trace",
    "merged_from_chrome",
    "render_summary",
]


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of (possibly overlapping) intervals."""
    total = 0.0
    end = float("-inf")
    for t0, t1 in sorted(intervals):
        if t1 <= end:
            continue
        total += t1 - max(t0, end)
        end = t1
    return total


def attribution(merged: Mapping[str, Any]) -> dict[str, Any]:
    """Per-phase wall-clock attribution of a merged trace.

    The *root* is the longest top-level span (ties broken by worker
    name, then index) — ``campaign`` for instrumented campaign runs.
    ``coverage`` is the fraction of the root interval covered by the
    union of its direct children: how much of the run's wall-clock the
    named phases account for.  ``phases`` aggregates every span by
    name.  All values here are wall-clock diagnostics — recorded in
    benchmark reports, never gated.
    """
    spans: Sequence[Mapping[str, Any]] = merged["spans"]
    phases: dict[str, tuple[int, float]] = {}
    for span in spans:
        count, total = phases.get(span["name"], (0, 0.0))
        phases[span["name"]] = (count + 1, total + (span["t1"] - span["t0"]))
    top = [span for span in spans if span["parent"] == -1]
    if not top:
        return {
            "coverage": 0.0,
            "covered": 0.0,
            "phases": [],
            "root": None,
            "total": 0.0,
        }
    root = min(
        top, key=lambda s: (s["t0"] - s["t1"], s["worker"], s["index"])
    )
    total = root["t1"] - root["t0"]
    children = [
        (max(span["t0"], root["t0"]), min(span["t1"], root["t1"]))
        for span in spans
        if span["worker"] == root["worker"] and span["parent"] == root["index"]
    ]
    covered = _union_length([(t0, t1) for t0, t1 in children if t1 > t0])
    return {
        "coverage": covered / total if total > 0 else 1.0,
        "covered": covered,
        "phases": [
            {"count": count, "name": name, "total": duration}
            for name, (count, duration) in sorted(phases.items())
        ],
        "root": root["name"],
        "total": total,
    }


def chrome_trace(merged: Mapping[str, Any]) -> dict[str, Any]:
    """Chrome trace-event JSON (``chrome://tracing`` / Perfetto format).

    One complete (``ph: "X"``) event per span with microsecond
    ``ts``/``dur``; worker names become thread names.  The counters and
    exact span floats travel in metadata/``args`` so the export is
    lossless (see :func:`merged_from_chrome`).
    """
    tids = {worker: tid for tid, worker in enumerate(merged["workers"])}
    events: list[dict[str, Any]] = [
        {
            "args": {
                "counters": dict(merged["counters"]),
                "schema": merged["schema"],
                "workers": list(merged["workers"]),
            },
            "cat": "__metadata",
            "name": "repro_trace",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "ts": 0,
        }
    ]
    for worker in merged["workers"]:
        events.append(
            {
                "args": {"name": worker},
                "cat": "__metadata",
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[worker],
                "ts": 0,
            }
        )
    for span in merged["spans"]:
        events.append(
            {
                "args": {
                    "attrs": dict(span["attrs"]),
                    "index": span["index"],
                    "parent": span["parent"],
                    "t0": span["t0"],
                    "t1": span["t1"],
                    "worker": span["worker"],
                },
                "cat": "repro",
                "dur": (span["t1"] - span["t0"]) * 1e6,
                "name": span["name"],
                "ph": "X",
                "pid": 1,
                "tid": tids[span["worker"]],
                "ts": span["t0"] * 1e6,
            }
        )
    return {"displayTimeUnit": "ms", "traceEvents": events}


def merged_from_chrome(chrome: Mapping[str, Any]) -> dict[str, Any]:
    """Reconstruct a merged trace from its Chrome export, exactly.

    ``merged_from_chrome(chrome_trace(m)) == m`` for every merged trace
    ``m`` — the CI telemetry job asserts this round-trip.
    """
    counters: dict[str, int] = {}
    workers: list[str] = []
    schema = TRACE_SCHEMA
    spans: list[dict[str, Any]] = []
    for event in chrome["traceEvents"]:
        if event["ph"] == "M" and event["name"] == "repro_trace":
            args = event["args"]
            counters = {name: args["counters"][name] for name in sorted(args["counters"])}
            workers = list(args["workers"])
            schema = int(args["schema"])
        elif event["ph"] == "X":
            args = event["args"]
            spans.append(
                {
                    "attrs": dict(args["attrs"]),
                    "index": args["index"],
                    "name": event["name"],
                    "parent": args["parent"],
                    "t0": args["t0"],
                    "t1": args["t1"],
                    "worker": args["worker"],
                }
            )
    spans.sort(key=lambda s: (workers.index(s["worker"]), s["index"]))
    return {
        "counters": counters,
        "schema": schema,
        "spans": spans,
        "workers": workers,
    }


def render_summary(merged: Mapping[str, Any]) -> str:
    """Human-readable terminal summary of a merged trace."""
    counters: Mapping[str, int] = merged["counters"]
    contract = [name for name in sorted(counters) if is_contract_counter(name)]
    diagnostic = [
        name for name in sorted(counters) if not is_contract_counter(name)
    ]
    attrib = attribution(merged)
    lines = [
        "telemetry summary: "
        f"{len(merged['workers'])} worker(s) ({', '.join(merged['workers'])}), "
        f"{len(merged['spans'])} spans, {len(counters)} counters"
    ]
    if contract:
        lines.append("")
        lines.append("contract counters (partition-invariant):")
        for name in contract:
            lines.append(f"  {name:<36} {counters[name]:>12}")
    if diagnostic:
        lines.append("")
        lines.append("diagnostic counters:")
        for name in diagnostic:
            lines.append(f"  {name:<36} {counters[name]:>12}")
    if attrib["root"] is not None:
        lines.append("")
        lines.append(
            f"span attribution (root '{attrib['root']}', "
            f"total {attrib['total']:.6f}s, "
            f"coverage {100.0 * attrib['coverage']:.1f}%):"
        )
        lines.append(f"  {'phase':<28} {'count':>8} {'total (s)':>14}")
        for phase in attrib["phases"]:
            lines.append(
                f"  {phase['name']:<28} {phase['count']:>8} "
                f"{phase['total']:>14.6f}"
            )
    return "\n".join(lines)
