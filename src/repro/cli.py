"""Command-line interface: ``repro-workflow <subcommand>``.

Subcommands
-----------
``period``     compute the exact period / throughput of an instance
``paths``      print the round-robin path table (Table 1)
``cycle``      per-resource cycle-times and the ``M_ct`` bound
``latency``    per-data-set latency (saturated or paced injection)
``gantt``      simulate and render an ASCII Gantt chart (Figures 7/12)
``dot``        export the TPN to graphviz DOT (Figures 4/5/8)
``table2``     run the Table 2 experimental campaign
``sweep``      run one experiment family through the batch engine
``search``     greedy + local-search mapping optimization (extension)
``optimize``   multi-start portfolio mapping search (repro.search)
``campaign``   durable, resumable scenario campaigns (repro.campaign)
``telemetry``  merge and report instrumentation traces (repro.telemetry)
``example``    dump one of the paper's examples (A/B/C) as JSON

Instances are JSON files in the :meth:`repro.core.instance.Instance.to_dict`
schema; ``example --out`` produces ready-made ones.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

from .algorithms.general_tpn import describe_critical_cycle
from .core.cycle_time import cycle_times
from .core.instance import Instance
from .core.paths import format_path_table
from .core.throughput import compute_period
from .experiments.examples_paper import example_a, example_b, example_c
from .experiments.table2 import format_table2, run_table2
from .petri.builder import build_tpn
from .petri.dot import tpn_to_dot
from .simulation.event_sim import simulate
from .simulation.gantt import render_gantt, resource_order, utilization_table
from .simulation.schedule import extract_schedules
from .simulation.steady_state import measure_period
from .utils import format_time

__all__ = ["main", "build_parser"]

_EXAMPLES = {"a": example_a, "b": example_b, "c": example_c}


def _load_instance(path: str) -> Instance:
    if path.lower() in _EXAMPLES:
        return _EXAMPLES[path.lower()]()
    return Instance.from_json(Path(path))


def _open_store(path: str | None):
    """Context manager over an optional ``--store`` flag (None when unset)."""
    if not path:
        from contextlib import nullcontext

        return nullcontext(None)
    from .campaign import ResultStore

    return ResultStore(path)


def _cmd_period(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    result = compute_period(inst, args.model, method=args.method,
                            max_rows=args.max_rows)
    print(result.summary())
    if args.breakdown and result.breakdown is not None:
        print("\nper-column contributions:")
        for col in result.breakdown.columns:
            print("  " + col.describe())
    if args.critical_cycle and result.tpn_solution is not None:
        print()
        print(describe_critical_cycle(result.tpn_solution))
    return 0


def _cmd_paths(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    print(format_path_table(inst.mapping, args.count))
    return 0


def _cmd_cycle(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    report = cycle_times(inst, args.model)
    print(f"{'proc':>5} {'stage':>5} {'C_in':>12} {'C_comp':>12} "
          f"{'C_out':>12} {'C_exec':>12}")
    for ct in report.per_processor:
        print(
            f"P{ct.proc:<4} S{ct.stage:<4} {format_time(ct.cin):>12} "
            f"{format_time(ct.ccomp):>12} {format_time(ct.cout):>12} "
            f"{format_time(ct.cexec(report.model)):>12}"
        )
    print(f"\nM_ct = {format_time(report.mct)}  "
          f"(critical processors: "
          f"{', '.join('P%d' % p for p in report.critical_processors())})")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from .core.latency import measure_latency, path_latency_bound

    inst = _load_instance(args.instance)
    rep = measure_latency(
        inst,
        args.model,
        n_datasets=args.datasets,
        injection_period=args.inject,
        max_rows=args.max_rows,
    )
    regime = (
        "saturated (all data sets at t=0)"
        if args.inject is None
        else f"paced, one data set every {args.inject:g}"
    )
    print(f"regime          : {regime}")
    print(f"data sets       : {rep.n_datasets}")
    print(f"mean latency    : {rep.mean:g}")
    print(f"max latency     : {rep.max:g}")
    print(f"steady latency  : {rep.steady_latency():g}")
    bounds = [path_latency_bound(inst, j)
              for j in range(min(inst.num_paths, rep.n_datasets))]
    print(f"path bounds     : {', '.join(format_time(b) for b in bounds)}")
    if args.per_dataset:
        for j, lat in enumerate(rep.latencies):
            print(f"  data set {j:>4}: {lat:g}")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    import numpy as np

    from .extensions.mapping_opt import greedy_mapping, local_search_mapping

    inst = _load_instance(args.instance)
    app, plat = inst.application, inst.platform
    greedy = greedy_mapping(app, plat, args.model, max_paths=args.max_rows)
    print(f"greedy mapping : {[list(s) for s in greedy.mapping.assignments]}")
    print(f"greedy period  : {greedy.period:g} "
          f"({greedy.evaluations} evaluations)")
    if args.refine:
        ls = local_search_mapping(
            app, plat, args.model, rng=np.random.default_rng(args.seed),
            start=greedy.mapping, max_iters=args.iters,
            max_paths=args.max_rows,
        )
        print(f"refined mapping: {[list(s) for s in ls.mapping.assignments]}")
        print(f"refined period : {ls.period:g} ({ls.evaluations} evaluations)")
    original = compute_period(inst, args.model, max_rows=args.max_rows)
    print(f"input mapping  : {original.period:g} (for comparison)")
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    if args.objectives:
        return _optimize_objectives(args)
    from .search import portfolio_search

    inst = _load_instance(args.instance)
    result = portfolio_search(
        inst.application, inst.platform, args.model,
        n_restarts=args.restarts, budget=args.budget, root_seed=args.seed,
        max_iters=args.iters, max_paths=args.max_rows,
        n_jobs=args.jobs if args.jobs != 1 else None,
        warm_start=args.warm_start,
        allocator=args.allocator or "fair-share",
    )
    if not _machine_stdout(args, result.to_dict()):
        print(f"portfolio      : {args.restarts} restarts, "
              f"budget {args.budget} evaluations "
              f"({result.evaluations} spent, {result.allocator} allocator)")
        print(f"{'restart':>7} {'kind':>16} {'evals':>6} {'rungs':>6} "
              f"{'period':>12}")
        for r in result.restarts:
            print(f"{r.index:>7} {r.kind:>16} {r.evaluations:>6} "
                  f"{len(r.rungs):>6} {format_time(r.period):>12}")
        print(f"best mapping   : "
              f"{[list(s) for s in result.mapping.assignments]}")
        best = result.best_restart
        provenance = f" (restart {best.index}, {best.kind})" if best else \
            " (budget exhausted before any restart)"
        print(f"best period    : {format_time(result.period)}{provenance}")
        original = compute_period(inst, args.model, max_rows=args.max_rows)
        print(f"input mapping  : {format_time(original.period)} "
              f"(for comparison)")
    if args.json_out:
        from .experiments.io import portfolio_to_json

        portfolio_to_json(result, args.json_out)
        _notice(args, f"wrote {args.json_out}")
    if args.csv:
        from .experiments.io import restarts_to_csv

        restarts_to_csv(result, args.csv)
        _notice(args, f"wrote {args.csv}")
    return 0


def _optimize_objectives(args: argparse.Namespace) -> int:
    """The multi-criteria ``optimize --objectives`` path (Pareto portfolio)."""
    from .search import pareto_portfolio_search

    inst = _load_instance(args.instance)
    result = pareto_portfolio_search(
        inst.application, inst.platform, args.model,
        objectives=args.objectives,
        n_restarts=args.restarts, budget=args.budget, root_seed=args.seed,
        max_iters=args.iters, max_paths=args.max_rows,
        n_jobs=args.jobs if args.jobs != 1 else None,
        warm_start=args.warm_start,
        allocator=args.allocator or "epsilon-constraint",
    )
    if not _machine_stdout(args, result.to_dict()):
        print(f"objectives     : {', '.join(result.objectives)}")
        print(f"portfolio      : {len(result.directions)} directions, "
              f"budget {args.budget} evaluations "
              f"({result.evaluations} spent, {result.allocator} allocator)")
        print(f"{'dir':>4} {'kind':>9} {'evals':>6} {'acc':>4}  label")
        for rec in result.records:
            print(f"{rec.index:>4} {rec.kind:>9} {rec.evaluations:>6} "
                  f"{rec.accepted:>4}  {rec.label}")
        front = result.front()
        print(f"pareto front   : {len(front)} non-dominated mapping(s)")
        for entry in front:
            values = ", ".join(
                f"{name}={entry.result.value(name):.6g}"
                for name in result.objectives
            )
            print(f"  {values}  "
                  f"{[list(s) for s in entry.assignments]}")
    if args.json_out:
        from .experiments.io import write_canonical_json

        write_canonical_json(result.to_dict(), args.json_out)
        _notice(args, f"wrote {args.json_out}")
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    net = build_tpn(inst, args.model, max_rows=args.max_rows)
    trace = simulate(net, args.firings)
    est = measure_period(trace)
    schedules = extract_schedules(trace, args.model)
    order = resource_order(inst, args.model)
    # Window: a whole number of TPN periods, past the transient.
    t_end = float(trace.completion[-1].max())
    span = est.rate * args.periods
    t0 = max(0.0, t_end - span) if args.start is None else args.start
    t1 = t0 + span
    print(f"measured period: {est.period:g} per data set "
          f"({est.rate:g} per {net.n_rows}-data-set sweep)\n")
    print(render_gantt(schedules, t0, t1, width=args.width, resources=order))
    print()
    print(utilization_table(schedules, t0, t1, resources=order))
    if args.svg:
        from .simulation.svg import render_gantt_svg

        marks = [t0 + i * est.rate for i in range(int(args.periods) + 1)]
        render_gantt_svg(
            schedules, t0, t1, resources=order, period_marks=marks,
            title=f"{inst.application.name} ({args.model})", path=args.svg,
        )
        print(f"\nwrote {args.svg}")
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    from .algorithms.verify import certify_period

    inst = _load_instance(args.instance)
    cert = certify_period(inst, args.model, max_rows=args.max_rows)
    print(f"period          : {cert.period:g}")
    print(f"rows m          : {cert.m}")
    print(f"primal cycle    : {len(cert.cycle_edges)} places "
          f"(achieves m*P exactly)")
    print(f"dual potentials : {len(cert.potentials)} entries "
          f"(no place violates the bound)")
    print("certificate verified: the period is provably optimal")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    inst = _load_instance(args.instance)
    net = build_tpn(inst, args.model, max_rows=args.max_rows)
    highlight: tuple[int, ...] = ()
    if args.critical_cycle:
        result = compute_period(inst, args.model, method="tpn",
                                max_rows=args.max_rows)
        highlight = result.tpn_solution.ratio.cycle_nodes
    text = tpn_to_dot(net, highlight=highlight,
                      title=f"{inst.application.name} ({args.model})")
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    with _open_store(args.store) as store:
        rows = run_table2(scale=args.scale, models=tuple(args.models),
                          n_jobs=args.jobs, root_seed=args.seed,
                          engine=args.engine, store=store)
    print(format_table2(rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.generator import TABLE2_CONFIGS
    from .experiments.runner import run_family

    if not 0 <= args.family < len(TABLE2_CONFIGS):
        print(f"error: --family must be in [0, {len(TABLE2_CONFIGS)})",
              file=sys.stderr)
        return 1
    config = TABLE2_CONFIGS[args.family]
    with _open_store(args.store) as store:
        records = run_family(
            config, args.model, count=args.count, root_seed=args.seed,
            n_jobs=args.jobs, engine=args.engine, store=store,
        )
    no_crit = [r for r in records if not r.critical]
    payload = {
        "family": config.name,
        "model": args.model,
        "engine": args.engine,
        "experiments": len(records),
        "no_critical": len(no_crit),
        "max_gap": max((r.gap for r in no_crit), default=0.0),
        "records": [dataclasses.asdict(r) for r in records],
    }
    if not _machine_stdout(args, payload):
        print(f"family         : {config.name}")
        print(f"model / engine : {args.model} / {args.engine}")
        print(f"experiments    : {len(records)}")
        print(f"no critical    : {len(no_crit)}")
        if no_crit:
            print(f"max gap        : "
                  f"{100 * max(r.gap for r in no_crit):.2f}%")
    if args.csv:
        from .experiments.io import records_to_csv

        records_to_csv(records, args.csv)
        _notice(args, f"wrote {args.csv}")
    return 0


def _write_machine_json(path: str, payload: dict) -> None:
    """Canonical JSON to a file, or stdout when ``path`` is ``-``."""
    from .experiments.io import canonical_json, write_canonical_json

    if path == "-":
        sys.stdout.write(canonical_json(payload, indent=2) + "\n")
    else:
        write_canonical_json(payload, path)
        print(f"wrote {path}")


def _machine_stdout(args: argparse.Namespace, payload: object) -> bool:
    """Honor the unified ``--format`` flag; ``True`` when JSON was emitted.

    Subcommands call this before their human rendering: under
    ``--format json`` the payload goes to stdout as canonical JSON
    (:func:`repro.experiments.io.format_payload`, the shared writer)
    and the caller skips its text output.  The historical ``--json`` /
    ``--summary-json`` *file* flags keep working as aliases alongside.
    """
    if getattr(args, "format", "text") != "json":
        return False
    from .experiments.io import format_payload

    sys.stdout.write(format_payload(payload, "json"))
    return True


def _notice(args: argparse.Namespace, message: str) -> None:
    """An informational line ("wrote PATH") that must never corrupt
    machine output: stderr under ``--format json``, stdout otherwise."""
    stream = (sys.stderr if getattr(args, "format", "text") == "json"
              else sys.stdout)
    print(message, file=stream)


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import (
        CampaignSpec,
        ResultStore,
        campaign_report_data,
        campaign_status,
        export_campaign_csv,
        export_campaign_json,
        render_report_text,
        run_campaign,
        run_campaign_workers,
    )

    spec = CampaignSpec.from_file(args.spec)
    if args.action == "run" and args.workers > 1:
        # The distributed fabric: N independent processes against the
        # shared WAL store, coordinated only by the lease table.  Run
        # before opening our own handle so exports below see the final
        # committed state through a fresh connection.
        fabric = run_campaign_workers(spec, args.store, workers=args.workers,
                                      trace_dir=args.trace)
        if not _machine_stdout(args, fabric.to_dict()):
            print(f"campaign       : {fabric.spec_name}")
            print(f"points         : {fabric.total}")
            print(f"store hits     : {fabric.hits} (resumed, not recomputed)")
            print(f"evaluated      : {fabric.evaluated} "
                  f"({fabric.workers} fabric workers)")
            print(f"remaining      : {fabric.remaining}"
                  + ("" if fabric.complete else "  (rerun to continue)"))
        if args.summary_json:
            _write_machine_json(args.summary_json, fabric.to_dict())
    with ResultStore(args.store) as store:
        if args.action == "run" and args.workers <= 1:
            def show(done: int, total: int) -> None:
                print(f"  ... {done}/{total} new points evaluated",
                      file=sys.stderr)

            report = run_campaign(
                spec, store,
                n_jobs=args.jobs if args.jobs != 1 else None,
                max_points=args.max_points,
                progress=show if args.verbose else None,
                trace_dir=args.trace,
            )
            if not _machine_stdout(args, report.to_dict()):
                print(f"campaign       : {report.spec_name}")
                print(f"points         : {report.total}")
                print(f"store hits     : {report.hits} "
                      f"(resumed, not recomputed)")
                print(f"evaluated      : {report.evaluated} "
                      f"({report.groups} topology groups)")
                print(f"remaining      : {report.remaining}"
                      + ("" if report.complete else "  (rerun to continue)"))
            if args.summary_json:
                # Machine-readable twin of the summary above: CI asserts
                # on parsed fields, immune to human-format reflowing.
                _write_machine_json(args.summary_json, report.to_dict())
        elif args.action == "report":
            counters = None
            if args.trace:
                # Join the report with a traced run's deterministic
                # counters (engine cache / lockstep / fallback figures).
                from .telemetry import merge_traces, trace_files

                files = trace_files(args.trace)
                if not files:
                    print(f"error: no trace-*.jsonl files in {args.trace}",
                          file=sys.stderr)
                    return 1
                counters = merge_traces(files)["counters"]
            data = campaign_report_data(
                spec, store, allow_partial=args.allow_partial,
                counters=counters)
            if args.json_out:
                _write_machine_json(args.json_out, data)
            elif not _machine_stdout(args, data):
                print(render_report_text(data))
        elif args.action == "status":
            status = campaign_status(spec, store)
            if args.json_out:
                _write_machine_json(args.json_out, status)
            elif not _machine_stdout(args, status):
                print(f"campaign       : {status['campaign']}")
                print(f"done           : {status['done']} / {status['total']}")
                for cell in status["cells"]:
                    print(f"  {cell['application']} | {cell['platform']} | "
                          f"{cell['replication']} | {cell['model']:<7} : "
                          f"{cell['done']}/{cell['total']}")
        # run/export both honor --json/--csv; status has no artifacts.
        if args.action in ("run", "export"):
            # A truncated run (--max-points) exporting right away is
            # explicit enough; standalone export is strict by default.
            partial = (True if args.action == "run"
                       else getattr(args, "allow_partial", False))
            if args.json_out:
                export_campaign_json(spec, store, args.json_out,
                                     allow_partial=partial)
                _notice(args, f"wrote {args.json_out}")
            if args.csv:
                export_campaign_csv(spec, store, args.csv,
                                    allow_partial=partial)
                _notice(args, f"wrote {args.csv}")
            if args.action == "export" and not (args.json_out or args.csv):
                print("error: export needs --json and/or --csv",
                      file=sys.stderr)
                return 1
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from .telemetry import (
        attribution,
        chrome_trace,
        merge_traces,
        render_summary,
        trace_files,
    )

    paths: list[Path] = []
    for target in args.traces:
        p = Path(target)
        if p.is_dir():
            paths.extend(trace_files(p))
        else:
            paths.append(p)
    if not paths:
        print("error: no trace-*.jsonl files found", file=sys.stderr)
        return 1
    merged = merge_traces(paths)
    if args.chrome:
        _write_machine_json(args.chrome, chrome_trace(merged))
    if args.json_out:
        _write_machine_json(
            args.json_out, {**merged, "attribution": attribution(merged)})
    if not (args.chrome or args.json_out):
        payload = {**merged, "attribution": attribution(merged)}
        if not _machine_stdout(args, payload):
            print(render_summary(merged))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .campaign import ResultStore, merge_stores, pull, push
    from .faults import heal

    with ResultStore(args.store) as store:
        if args.action == "push":
            report = push(store, args.target, strict=args.strict)
        elif args.action == "pull":
            report = pull(store, args.target, strict=args.strict)
        elif args.action == "heal":
            # Replay a worker's spill journal (idempotent: rerunning a
            # finished or interrupted heal is always safe).
            report = heal(store, args.target, strict=args.strict)
        else:  # merge: another store *file* into this one
            with ResultStore(args.target) as other:
                report = merge_stores(store, other, strict=args.strict)
    if not _machine_stdout(args, report.to_dict()):
        print(f"sync           : {report.source} -> {report.dest}")
        print(f"examined       : {report.examined}")
        print(f"merged         : {report.merged}"
              + (f"  (+{report.repaired} repaired)" if report.repaired
                 else ""))
        print(f"skipped        : {report.skipped} "
              f"(already present, equal bytes)")
        if not report.clean:
            print(f"conflicts      : {len(report.conflicts)} (destination "
                  f"rows kept; incoming copies quarantined)")
            print(f"quarantined    : {len(report.quarantined)} payload(s) "
                  f"refused — inspect the destination's quarantine area")
    if args.json_out:
        _write_machine_json(args.json_out, report.to_dict())
    return 0 if report.clean else 1


def _cmd_example(args: argparse.Namespace) -> int:
    inst = _EXAMPLES[args.which.lower()]()
    text = inst.to_json()
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for the test-suite)."""
    parser = argparse.ArgumentParser(
        prog="repro-workflow",
        description="Throughput of replicated workflows on heterogeneous "
                    "platforms (Benoit, Gallet, Gaujal, Robert — ICPP 2009).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_instance(p: argparse.ArgumentParser) -> None:
        p.add_argument("instance",
                       help="instance JSON path, or a/b/c for paper examples")

    def add_model(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", default="overlap",
                       choices=["overlap", "strict"],
                       help="communication model (default overlap)")
        p.add_argument("--max-rows", type=int, default=20_000,
                       help="budget on lcm(m_i) for full-TPN methods")

    def add_format(p: argparse.ArgumentParser) -> None:
        # The one machine-output convention: every subcommand that can
        # speak to machines takes --format {text,json}; the historical
        # --json PATH / --summary-json PATH flags stay as file-writing
        # compatibility aliases.
        p.add_argument("--format", choices=["text", "json"], default="text",
                       help="stdout format: human text (default) or "
                            "canonical JSON (byte-deterministic, shared "
                            "across all subcommands)")

    p = sub.add_parser("period", help="compute the exact period")
    add_instance(p)
    add_model(p)
    p.add_argument("--method", default="auto",
                   choices=["auto", "polynomial", "tpn", "simulation"])
    p.add_argument("--breakdown", action="store_true",
                   help="print per-column contributions (polynomial method)")
    p.add_argument("--critical-cycle", action="store_true",
                   help="print the critical cycle (tpn method)")
    p.set_defaults(func=_cmd_period)

    p = sub.add_parser("paths", help="round-robin path table (Table 1)")
    add_instance(p)
    p.add_argument("--count", type=int, default=None,
                   help="number of data sets to list (default m + 2)")
    p.set_defaults(func=_cmd_paths)

    p = sub.add_parser("cycle", help="resource cycle-times and M_ct")
    add_instance(p)
    add_model(p)
    p.set_defaults(func=_cmd_cycle)

    p = sub.add_parser("latency", help="per-data-set latency analysis")
    add_instance(p)
    add_model(p)
    p.add_argument("--datasets", type=int, default=60,
                   help="number of data sets to measure")
    p.add_argument("--inject", type=float, default=None,
                   help="injection period T (default: saturated input)")
    p.add_argument("--per-dataset", action="store_true",
                   help="print every data set's latency")
    p.set_defaults(func=_cmd_latency)

    p = sub.add_parser("search", help="mapping optimization heuristics")
    add_instance(p)
    add_model(p)
    p.add_argument("--refine", action="store_true",
                   help="run local search after the greedy phase")
    p.add_argument("--iters", type=int, default=60,
                   help="local-search iteration budget")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_search)

    p = sub.add_parser(
        "optimize",
        help="multi-start portfolio mapping optimization (repro.search)")
    add_instance(p)
    add_model(p)
    p.add_argument("--restarts", type=int, default=6,
                   help="diversified restarts (greedy/random/perturbed-elite)")
    p.add_argument("--budget", type=int, default=1500,
                   help="total period-oracle evaluations across all restarts")
    p.add_argument("--iters", type=int, default=100,
                   help="hill-climbing iteration cap per restart")
    p.add_argument("--seed", type=int, default=20090302,
                   help="root entropy of the restart seed tree")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes per neighborhood (0 = all cores, "
                        "1 = serial; trajectory is identical)")
    p.add_argument("--warm-start", action="store_true",
                   help="seed Howard's policy iteration from the previous "
                        "instance of each topology group (period values "
                        "unchanged; extracted cycles may differ)")
    p.add_argument("--objectives", default=None,
                   help="comma-separated criteria out of period, latency, "
                        "reliability — switches to the Pareto-archive "
                        "portfolio (repro.search.pareto) and reports the "
                        "non-dominated front")
    p.add_argument("--allocator", default=None,
                   choices=["fair-share", "racing", "epsilon-constraint",
                            "weighted-sum"],
                   help="budget allocation across restarts: even splits "
                        "(fair-share, the period-only default) or "
                        "successive halving over resumable climbs (racing); "
                        "with --objectives, the scalarization strategy "
                        "(epsilon-constraint, the multi-criteria default, "
                        "or weighted-sum)")
    add_format(p)
    p.add_argument("--json", dest="json_out", default=None,
                   help="write the full result (restart traces, or the "
                        "Pareto archive with --objectives) as JSON")
    p.add_argument("--csv", default=None,
                   help="write the per-restart summary as CSV "
                        "(period-only portfolios)")
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser("gantt", help="ASCII Gantt chart (Figures 7/12)")
    add_instance(p)
    add_model(p)
    p.add_argument("--firings", type=int, default=64,
                   help="simulated firings per transition")
    p.add_argument("--periods", type=float, default=2.0,
                   help="window length in TPN periods")
    p.add_argument("--start", type=float, default=None,
                   help="window start time (default: end of simulation)")
    p.add_argument("--width", type=int, default=120, help="chart width")
    p.add_argument("--svg", default=None,
                   help="also write an SVG rendering to this path")
    p.set_defaults(func=_cmd_gantt)

    p = sub.add_parser("certify",
                       help="compute the period with an optimality proof")
    add_instance(p)
    add_model(p)
    p.set_defaults(func=_cmd_certify)

    p = sub.add_parser("dot", help="export the TPN to graphviz DOT")
    add_instance(p)
    add_model(p)
    p.add_argument("--critical-cycle", action="store_true",
                   help="highlight the critical cycle (Figure 8)")
    p.add_argument("--out", default=None, help="output path (default stdout)")
    p.set_defaults(func=_cmd_dot)

    p = sub.add_parser("table2", help="run the Table 2 campaign")
    p.add_argument("--scale", type=float, default=0.1,
                   help="fraction of the paper's per-row counts (default 0.1; "
                        "1.0 = full 5152 experiments)")
    p.add_argument("--models", nargs="+", default=["overlap", "strict"],
                   choices=["overlap", "strict"])
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes (0 = all cores, 1 = serial)")
    p.add_argument("--seed", type=int, default=20090302)
    p.add_argument("--engine", default="batch", choices=["batch", "percall"],
                   help="evaluation engine (identical records either way)")
    p.add_argument("--store", default=None,
                   help="content-addressed result store (SQLite path); "
                        "already-stored points are reused, new ones saved")
    p.set_defaults(func=_cmd_table2)

    p = sub.add_parser(
        "sweep",
        help="run one experiment family through the batch engine")
    p.add_argument("--family", type=int, default=0,
                   help="index into the Table 2 families (0-5)")
    p.add_argument("--model", default="overlap",
                   choices=["overlap", "strict"])
    p.add_argument("--count", type=int, default=None,
                   help="number of experiments (default: the family's "
                        "paper count)")
    p.add_argument("--engine", default="batch", choices=["batch", "percall"],
                   help="batched topology-cached evaluation vs the "
                        "historical per-call path")
    p.add_argument("--jobs", type=int, default=0,
                   help="worker processes (0 = all cores, 1 = serial)")
    p.add_argument("--seed", type=int, default=20090302)
    p.add_argument("--csv", default=None,
                   help="also write the records to this CSV path")
    p.add_argument("--store", default=None,
                   help="content-addressed result store (SQLite path); "
                        "already-stored points are reused, new ones saved")
    add_format(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="durable, resumable scenario campaigns (repro.campaign)")
    p.add_argument("action", choices=["run", "status", "export", "report"],
                   help="run (resumable), inspect progress, export stored "
                        "results, or aggregate them (per-axis pivots + "
                        "cross-model deltas)")
    p.add_argument("spec", help="campaign spec file (.json or .toml)")
    p.add_argument("--store", required=True,
                   help="content-addressed result store (SQLite path)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for run (0 = all cores, "
                        "1 = serial; stored values are identical)")
    p.add_argument("--workers", type=int, default=1,
                   help="run with N independent fabric worker processes "
                        "coordinated through the store's claim/lease table "
                        "(the multi-host execution model on one machine; "
                        "stored values and exports are byte-identical to "
                        "--workers 1)")
    p.add_argument("--max-points", type=int, default=None,
                   help="evaluate at most this many new points then stop "
                        "(deterministic interruption; rerun to resume)")
    p.add_argument("--verbose", action="store_true",
                   help="print progress while running")
    add_format(p)
    p.add_argument("--json", dest="json_out", default=None,
                   help="run/export: write the joined results as "
                        "deterministic JSON; report: write the aggregated "
                        "report; status: write the progress summary as "
                        "canonical JSON ('-' for stdout)")
    p.add_argument("--summary-json", dest="summary_json", default=None,
                   help="run: write the run summary (points/hits/evaluated/"
                        "remaining) as canonical JSON ('-' for stdout)")
    p.add_argument("--csv", default=None,
                   help="write the joined results as deterministic CSV")
    p.add_argument("--allow-partial", action="store_true",
                   help="export even when some points are missing")
    p.add_argument("--trace", default=None,
                   help="run: enable telemetry and write per-process "
                        "trace-*.jsonl files (deterministic counters + "
                        "wall-clock spans) into this directory; report: "
                        "merge that directory's traces and add an engine "
                        "telemetry section")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "store",
        help="sync content-addressed stores (repro.campaign.sync) and "
             "heal spill journals (repro.faults)")
    p.add_argument("action", choices=["push", "pull", "merge", "heal"],
                   help="push local rows to a remote, pull remote rows in, "
                        "merge another store file into this one, or heal "
                        "(replay a fabric worker's spill journal)")
    p.add_argument("store",
                   help="the local store file (push source / pull+merge+"
                        "heal destination)")
    p.add_argument("target",
                   help="the other side: a store file, a directory "
                        "remote (existing directory or a path ending in "
                        "'/'; rsync/NFS-able object tree), or for heal "
                        "the spill-journal directory")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on payload conflicts instead of "
                        "quarantining and reporting them")
    add_format(p)
    p.add_argument("--json", dest="json_out", default=None,
                   help="write the sync report as canonical JSON "
                        "('-' for stdout)")
    p.set_defaults(func=_cmd_store)

    p = sub.add_parser(
        "telemetry",
        help="merge and report instrumentation traces (repro.telemetry)")
    p.add_argument("action", choices=["report"],
                   help="report: merge trace files and print the counter "
                        "and span-attribution summary")
    p.add_argument("traces", nargs="+",
                   help="trace-*.jsonl files and/or directories containing "
                        "them (e.g. the campaign run's --trace directory)")
    add_format(p)
    p.add_argument("--json", dest="json_out", default=None,
                   help="write the merged trace plus its span attribution "
                        "as canonical JSON ('-' for stdout)")
    p.add_argument("--chrome", default=None,
                   help="write Chrome trace-event JSON for chrome://tracing "
                        "or https://ui.perfetto.dev ('-' for stdout)")
    p.set_defaults(func=_cmd_telemetry)

    p = sub.add_parser("example", help="dump a paper example as JSON")
    p.add_argument("which", choices=["a", "b", "c", "A", "B", "C"])
    p.add_argument("--out", default=None, help="output path (default stdout)")
    p.set_defaults(func=_cmd_example)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (returns a process exit code)."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:  # surfaced as clean CLI errors
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
