"""Catalog of realistic streaming-workflow definitions.

The paper motivates replicated workflows with "video and audio encoding
and decoding, DSP applications" and the DataCutter scientific-filtering
middleware.  This module provides ready-made, documented pipeline
definitions in those families — the workload side of the benchmark
harness and examples — plus a parametric synthetic generator for
stress shapes (compute-heavy, comm-heavy, bursty).

Costs are order-of-magnitude realistic (FLOP per item, bytes per item)
but deliberately simple; they exist to exercise the scheduling math, not
to model codecs bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.application import Application

__all__ = [
    "WorkloadSpec",
    "CATALOG",
    "get_workload",
    "video_transcode",
    "audio_pipeline",
    "sdr_receiver",
    "datacutter_filter_chain",
    "genomics_pipeline",
    "synthetic",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """A named workload with provenance notes.

    Attributes
    ----------
    name:
        Catalog key.
    application:
        The pipeline definition.
    description:
        What the stages model and where the cost shape comes from.
    """

    name: str
    application: Application
    description: str


def video_transcode() -> Application:
    """Live video transcoding: demux, decode, scale, encode, mux.

    Shape: encode dominates compute (motion search), decoded frames
    dominate traffic (raw YUV between decode and encode stages).
    Units: GFLOP and MB per group-of-pictures.
    """
    return Application(
        works=[0.4, 6.0, 2.5, 14.0, 0.5],
        file_sizes=[8.0, 48.0, 24.0, 4.0],
        name="video-transcode",
        stage_names=["demux", "decode", "scale", "encode", "mux"],
    )


def audio_pipeline() -> Application:
    """Audio mastering chain: decode, resample, effects, encode.

    Audio frames are small; compute is modest and balanced — a pipeline
    where communication almost never bottlenecks (contrast with video).
    """
    return Application(
        works=[0.2, 0.8, 1.5, 1.2],
        file_sizes=[0.4, 1.6, 1.6],
        name="audio-pipeline",
        stage_names=["decode", "resample", "effects", "encode"],
    )


def sdr_receiver() -> Application:
    """Software-defined-radio receive chain (the paper's DSP family).

    Channelize is FFT-heavy; raw IQ samples in front are the big files,
    decoded bits at the end are tiny — a strongly front-loaded traffic
    shape.
    """
    return Application(
        works=[0.5, 7.0, 3.0, 9.0, 0.3],
        file_sizes=[32.0, 8.0, 4.0, 0.2],
        name="sdr-receiver",
        stage_names=["capture", "channelize", "demod", "decode", "sink"],
    )


def datacutter_filter_chain() -> Application:
    """Scientific dataset filtering (the DataCutter family [4, 10]).

    Archive chunks are read, decompressed, clipped to a region of
    interest, resampled and aggregated; data *shrinks* along the chain,
    making later stages cheap to feed — the classic case where
    replicating the early filters pays off.
    """
    return Application(
        works=[1.0, 5.0, 4.0, 6.0, 2.0, 1.0],
        file_sizes=[64.0, 48.0, 16.0, 8.0, 2.0],
        name="datacutter-chain",
        stage_names=["read", "decompress", "clip", "resample",
                     "aggregate", "write"],
    )


def genomics_pipeline() -> Application:
    """Read-alignment style pipeline: trim, align, sort, call, report.

    Alignment dominates everything — the single-heavy-stage shape where
    throughput scales almost linearly with that stage's replication
    until the input splitter's port saturates.
    """
    return Application(
        works=[1.0, 40.0, 6.0, 10.0, 0.5],
        file_sizes=[12.0, 14.0, 10.0, 1.0],
        name="genomics-pipeline",
        stage_names=["trim", "align", "sort", "call", "report"],
    )


def synthetic(
    n_stages: int,
    shape: str = "balanced",
    scale: float = 10.0,
    seed: int = 0,
) -> Application:
    """Parametric synthetic pipeline.

    Parameters
    ----------
    n_stages:
        Chain length (>= 1).
    shape:
        ``"balanced"`` — all stages and files comparable;
        ``"compute-heavy"`` — one dominant stage in the middle;
        ``"comm-heavy"`` — large files, light compute;
        ``"shrinking"`` — files decay geometrically along the chain
        (the DataCutter shape);
        ``"random"`` — log-uniform works and sizes.
    scale:
        Typical magnitude of works/sizes.
    seed:
        RNG seed for the ``"random"`` shape.
    """
    if n_stages < 1:
        raise ValueError("n_stages must be >= 1")
    n_files = n_stages - 1
    if shape == "balanced":
        works = [scale] * n_stages
        sizes = [scale] * n_files
    elif shape == "compute-heavy":
        works = [scale * 0.2] * n_stages
        works[n_stages // 2] = scale * 5.0
        sizes = [scale * 0.2] * n_files
    elif shape == "comm-heavy":
        works = [scale * 0.2] * n_stages
        sizes = [scale * 5.0] * n_files
    elif shape == "shrinking":
        works = [scale] * n_stages
        sizes = [scale * (0.5 ** i) for i in range(n_files)]
    elif shape == "random":
        rng = np.random.default_rng(seed)
        works = list(scale * np.exp(rng.uniform(-1.5, 1.5, n_stages)))
        sizes = list(scale * np.exp(rng.uniform(-1.5, 1.5, n_files)))
    else:
        raise ValueError(f"unknown shape {shape!r}")
    return Application(works=works, file_sizes=sizes,
                       name=f"synthetic-{shape}-{n_stages}")


#: The named catalog (used by examples and benchmarks).
CATALOG: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec("video-transcode", video_transcode(),
                     "live transcoding; encode-heavy, raw-frame traffic"),
        WorkloadSpec("audio-pipeline", audio_pipeline(),
                     "audio mastering; small frames, balanced compute"),
        WorkloadSpec("sdr-receiver", sdr_receiver(),
                     "software radio; front-loaded traffic, FFT compute"),
        WorkloadSpec("datacutter-chain", datacutter_filter_chain(),
                     "scientific filtering; shrinking data volumes"),
        WorkloadSpec("genomics-pipeline", genomics_pipeline(),
                     "read alignment; one dominant stage"),
    ]
}


def get_workload(name: str) -> Application:
    """Look up a catalog workload by name (raises ``KeyError`` with the
    available names otherwise)."""
    try:
        return CATALOG[name].application
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(CATALOG)}"
        ) from None
