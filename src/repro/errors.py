"""Exception hierarchy for :mod:`repro`.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with one ``except`` clause, while
the more specific subclasses keep individual failure modes distinguishable.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "MappingError",
    "DeadlockError",
    "SolverError",
    "ReplicationExplosionError",
    "SimulationError",
    "StoreCorruptionError",
    "StoreLeaseError",
    "StoreUnavailableError",
    "SyncConflictError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """An application, platform or mapping failed structural validation.

    Also a :class:`ValueError` so it integrates with generic input-checking
    code that only knows about the standard hierarchy.
    """


class MappingError(ValidationError):
    """A mapping violates the paper's rules.

    The two rules from Section 2 of the paper are (1) a processor executes
    at most one stage and (2) every stage is mapped on at least one
    processor.  Index-out-of-range processors are reported here as well.
    """


class DeadlockError(ReproError):
    """A timed Petri net contains a token-free cycle.

    A cycle whose places hold no token can never fire; the event graph is
    not live and no steady-state period exists.  The TPNs built by
    :mod:`repro.petri.builder` are live by construction, so this error
    signals either a hand-built net or a library bug caught by validation.
    """


class SolverError(ReproError):
    """A cycle-ratio solver failed to converge or was fed an empty graph."""


class ReplicationExplosionError(ReproError):
    """The full TPN would exceed the configured size budget.

    The number of TPN rows is ``m = lcm(m_0, ..., m_{n-1})`` which grows
    multiplicatively with co-prime replication counts (Example C of the
    paper reaches ``m = 10395``).  Methods that need the *full* net (the
    STRICT ONE-PORT general solver, the simulator) refuse to build nets
    beyond the budget instead of silently consuming all memory.  The
    OVERLAP ONE-PORT polynomial algorithm (Theorem 1) never raises this.
    """

    def __init__(self, m: int, limit: int) -> None:
        super().__init__(
            f"the TPN would have m = lcm(m_i) = {m} rows, exceeding the "
            f"limit of {limit}; raise `max_rows` explicitly if you really "
            f"want to build a net this large"
        )
        #: Number of rows the net would have had.
        self.m = m
        #: The limit that was exceeded.
        self.limit = limit


class SimulationError(ReproError):
    """The discrete-event simulator was given inconsistent arguments."""


class StoreCorruptionError(ReproError):
    """A campaign result store failed its integrity check on open.

    Raised by :class:`repro.campaign.store.ResultStore` when the SQLite
    file is unreadable or fails ``PRAGMA quick_check`` — typically after
    a hard kill mid-write or a truncated copy.
    :meth:`~repro.campaign.store.ResultStore.recover` salvages every
    readable row into a fresh store and sets the damaged file aside.
    """


class StoreUnavailableError(ReproError):
    """A campaign result store could not be reached (transient, retryable).

    Raised by :class:`repro.campaign.store.ResultStore` when opening or
    committing fails for *environmental* reasons — a locked WAL sidecar
    held by a dying process, a read-only or full filesystem, a vanished
    network mount — as opposed to a damaged file, which is
    :class:`StoreCorruptionError` and never retried.  Carries the store
    path and the original cause so the retry policy
    (:class:`repro.faults.RetryPolicy`) and the operator both see *what*
    was unreachable and *why*.  When the retry budget is exhausted, the
    campaign fabric degrades gracefully: workers spill committed results
    to a local journal (:class:`repro.faults.SpillJournal`) that
    ``repro-workflow store heal`` later replays.
    """

    def __init__(self, path: str, cause: BaseException) -> None:
        super().__init__(
            f"store {path!r} is unavailable ({type(cause).__name__}: "
            f"{cause}); the file may be locked, read-only or on a full "
            f"disk — retry once the condition clears, or let the fabric "
            f"spill to a journal and `store heal` later"
        )
        #: Path of the unreachable store file.
        self.path = path
        #: The underlying exception (e.g. ``sqlite3.OperationalError``).
        self.cause = cause


class StoreLeaseError(ReproError):
    """A store operation would trample rows an active worker holds.

    Raised by :meth:`repro.campaign.store.ResultStore.recover` when the
    file still carries unexpired claim leases
    (:mod:`repro.campaign.lease`): some worker may commit results any
    moment, and replacing the file underneath it would lose them.
    Wait for the leases to expire (the TTL bounds the wait), or pass
    ``force=True`` once the holders are known dead.
    """


class SyncConflictError(ReproError):
    """Two stores hold *different* payloads under one content digest.

    A digest determines its payload (evaluation is deterministic and
    SHA-256 collisions are not a practical concern), so a mismatch
    proves one side is corrupt or was written by incompatible code.
    :mod:`repro.campaign.sync` detects the conflict, quarantines the
    incoming payload for forensics and reports it — it never silently
    picks a winner.  Raised only by strict entry points; the sync
    report carries the same information for callers that prefer to
    inspect.
    """
