"""(max, +) algebra on numpy matrices.

The (max, +) semiring replaces ``+`` by ``max`` and ``x`` by ``+``; its
zero is ``-inf`` and its unit is ``0``.  Timed event graphs are *linear*
in this algebra (Baccelli et al., "Synchronization and Linearity"), which
is the theoretical backbone of Section 4 of the paper: steady-state
periods are max-plus eigenvalues, i.e. maximum cycle means.

These helpers power :mod:`repro.maxplus.recurrence` (matrix form of a TPN)
and serve as an independently-testable substrate: associativity,
distributivity and the eigenvalue/cycle-mean correspondence are all
exercised by the property-based test-suite.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ..errors import SolverError
from .graph import RatioGraph

__all__ = [
    "NEG_INF",
    "mp_zeros",
    "mp_eye",
    "mp_matmul",
    "mp_matvec",
    "mp_pow",
    "mp_star",
    "matrix_to_graph",
    "mp_eigenvalue",
]

#: The (max, +) zero element.
NEG_INF = -np.inf


def mp_zeros(shape: tuple[int, int] | int) -> npt.NDArray[np.float64]:
    """Max-plus zero matrix (all entries ``-inf``)."""
    return np.full(shape, NEG_INF)


def mp_eye(n: int) -> npt.NDArray[np.float64]:
    """Max-plus identity: ``0`` on the diagonal, ``-inf`` elsewhere."""
    eye = mp_zeros((n, n))
    np.fill_diagonal(eye, 0.0)
    return eye


def mp_matmul(a: npt.NDArray[np.float64], b: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
    """Max-plus matrix product ``(a ⊗ b)[i, j] = max_k a[i, k] + b[k, j]``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} ⊗ {b.shape}")
    # Broadcasting (i, k, j); -inf + -inf stays -inf thanks to errstate.
    with np.errstate(invalid="ignore"):
        out = (a[:, :, None] + b[None, :, :]).max(axis=1)
    return out


def mp_matvec(a: npt.NDArray[np.float64], x: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
    """Max-plus matrix-vector product ``max_k a[i, k] + x[k]``."""
    a = np.asarray(a, dtype=float)
    x = np.asarray(x, dtype=float)
    with np.errstate(invalid="ignore"):
        return (a + x[None, :]).max(axis=1)


def mp_pow(a: npt.NDArray[np.float64], k: int) -> npt.NDArray[np.float64]:
    """Max-plus matrix power ``a^{⊗k}`` by binary exponentiation."""
    n = a.shape[0]
    if k < 0:
        raise ValueError("negative max-plus powers are undefined")
    result = mp_eye(n)
    base = np.asarray(a, dtype=float)
    while k:
        if k & 1:
            result = mp_matmul(result, base)
        base = mp_matmul(base, base)
        k >>= 1
    return result


def mp_star(a: npt.NDArray[np.float64], max_iter: int | None = None) -> npt.NDArray[np.float64]:
    """Kleene star ``a* = I ⊕ a ⊕ a² ⊕ ...``.

    Converges iff every cycle of ``a`` has non-positive weight; for the
    TPN usage the support of ``a`` is **acyclic** (the 0-token subgraph)
    so ``a*`` is reached after at most ``⌈log2 n⌉ + 1`` squarings.
    Divergence (a positive-weight cycle) is detected via the diagonal
    once every path length is covered, not by an iteration cap alone:
    repeated squaring re-associates the path sums, so floating-point
    addition can keep nudging already-correct entries by one ulp for a
    few extra rounds — the entries are monotone and bounded, so that
    creep settles, and mistaking it for divergence would reject valid
    acyclic inputs (found by hypothesis on a strict-model TPN whose
    durations carried 1-ulp noise).
    """
    n = a.shape[0]
    acc = np.maximum(mp_eye(n), np.asarray(a, dtype=float))
    limit = max_iter if max_iter is not None else max(1, n).bit_length() + 1
    for _ in range(limit):
        nxt = np.maximum(mp_eye(n), mp_matmul(acc, acc))
        if np.array_equal(nxt, acc):
            return acc
        acc = nxt
    # All path lengths <= n are covered now, so any positive-weight
    # cycle has surfaced on the diagonal: that is true divergence.
    if np.any(np.diag(acc) > 0):
        raise SolverError(
            "max-plus star did not converge: the matrix has a "
            "positive-weight cycle (the 0-token subgraph of a TPN must "
            "be acyclic)"
        )
    # Only floating-point re-association creep remains; entries are
    # non-decreasing and bounded so the fixpoint is reached after a few
    # more rounds (64 is a generous backstop, typical is 1-2).
    for _ in range(64):
        nxt = np.maximum(mp_eye(n), mp_matmul(acc, acc))
        if np.array_equal(nxt, acc):
            return acc
        acc = nxt
    raise SolverError(
        "max-plus star did not stabilize: entries kept changing after "
        "every path length was covered and no positive-weight cycle "
        "was found"
    )


def matrix_to_graph(a: npt.NDArray[np.float64]) -> RatioGraph:
    """View a max-plus matrix as a unit-token graph.

    Entry ``a[i, j] > -inf`` becomes the edge ``j -> i`` (column feeds
    row, matching the dater convention ``x(k) = A ⊗ x(k-1)``) with weight
    ``a[i, j]`` and one token.
    """
    a = np.asarray(a, dtype=float)
    n = a.shape[0]
    edges = [
        (int(j), int(i), float(a[i, j]), 1)
        for i in range(n)
        for j in range(n)
        if np.isfinite(a[i, j])
    ]
    return RatioGraph(n, edges)


def mp_eigenvalue(a: npt.NDArray[np.float64]) -> float:
    """Max-plus eigenvalue of an irreducible matrix.

    Equals the maximum cycle mean of the associated graph — computed here
    with Karp's algorithm, giving a solver-independent oracle for the
    period of small TPNs in matrix form.
    """
    from .karp import max_cycle_mean

    return max_cycle_mean(matrix_to_graph(a))
