"""Lawler's binary search for the maximum cycle ratio.

For a candidate ratio ``lambda`` build the reduced weights
``w'(e) = w(e) - lambda * t(e)``.  A cycle with positive reduced weight
exists iff ``lambda < lambda*``; binary search on ``lambda`` brackets the
maximum cycle ratio to any precision.  Positive-cycle detection uses
Bellman-Ford-style value iteration with early termination.

This solver is fully independent from Howard's policy iteration
(:mod:`repro.maxplus.howard`) which makes it a good cross-check; Howard is
the default because it terminates with the *exact* critical cycle instead
of an interval.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ..errors import SolverError
from .graph import RatioGraph

__all__ = ["max_cycle_ratio_lawler", "has_positive_cycle"]


def has_positive_cycle(graph: RatioGraph, reduced_weight: npt.NDArray[np.float64]) -> bool:
    """``True`` when some cycle has a strictly positive reduced weight.

    Runs at most ``n`` rounds of vectorized Bellman-Ford relaxation on
    potentials initialized to zero; if potentials still improve after
    ``n`` rounds a positive cycle exists.
    """
    n = graph.n_nodes
    if n == 0 or graph.n_edges == 0:
        return False
    src, dst = graph.src, graph.dst
    pot = np.zeros(n)
    for _ in range(n):
        cand = np.full(n, -np.inf)
        np.maximum.at(cand, dst, pot[src] + reduced_weight)
        new_pot = np.maximum(pot, cand)
        if np.allclose(new_pot, pot, rtol=0.0, atol=0.0):
            return False
        pot = new_pot
    return True


def max_cycle_ratio_lawler(
    graph: RatioGraph,
    rel_tol: float = 1e-12,
    abs_tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Maximum cycle ratio by binary search (Lawler, 1976).

    Parameters
    ----------
    graph:
        The token graph.  Must contain at least one cycle, and every cycle
        must carry a token (checked via the 0-token acyclicity test).
    rel_tol, abs_tol:
        Termination tolerances on the bracketing interval.
    max_iter:
        Hard cap on bisection steps (60 reaches double precision already).

    Returns
    -------
    float
        ``lambda*`` up to the requested tolerance.
    """
    graph.token_free_topological_order()  # raises DeadlockError when not live

    token_edges = graph.tokens > 0
    if not np.any(token_edges):
        raise SolverError("graph has no token-carrying edge: no cycle exists")

    # Bracket: no cycle ratio can exceed (sum of positive weights) / 1,
    # nor be below the most negative single-edge ratio.
    w, t = graph.weight, graph.tokens
    hi = float(np.maximum(w, 0.0).sum(dtype=np.float64)) + 1.0
    lo = float(np.minimum(w, 0.0).sum(dtype=np.float64)) - 1.0

    # Verify a cycle exists at all (positive cycle at lambda = lo - slack
    # means *any* cycle since all reduced weights shift upward).
    probe = w - (lo - 1.0) * t
    if not has_positive_cycle(graph, probe):
        # All cycles might still have weight exactly 0 and tokens 0... the
        # liveness check above excludes token-free cycles, so reaching here
        # means the graph is acyclic.
        zero_probe = w - (lo - 1.0) * t + 1e-9
        if not has_positive_cycle(graph, zero_probe):
            raise SolverError("graph is acyclic: no cycle ratio exists")

    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if has_positive_cycle(graph, w - mid * t):
            lo = mid
        else:
            hi = mid
        if hi - lo <= abs_tol + rel_tol * max(abs(lo), abs(hi)):
            break
    return 0.5 * (lo + hi)
