"""Howard's policy iteration for the maximum cycle ratio.

Policy iteration on the "one chosen out-edge per node" relaxation
(Cochet-Terrasson, Cohen, Gaubert, Mc Gettrick, Quadrat 1998; Dasdan 2004):

1. every node picks one outgoing edge — the *policy* — giving a functional
   graph whose every component contains exactly one cycle;
2. each policy cycle is evaluated exactly (``sum w / sum t``) and node
   potentials ``h`` are propagated backwards along the policy;
3. edges that would improve ``(lambda, h)`` lexicographically replace the
   current policy choices; repeat until a fixed point.

At the fixed point the best policy cycle is a true critical cycle, which
is how the library *extracts* critical cycles (Figure 8 of the paper) and
why Howard is the default solver: it returns the exact cycle, not just a
bracketed value.  Graphs are processed per strongly connected component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SolverError
from .graph import RatioGraph

__all__ = ["HowardResult", "max_cycle_ratio_howard"]

#: Safety cap multiplier on policy-iteration rounds.
_MAX_ROUNDS_FACTOR = 64


@dataclass(frozen=True)
class HowardResult:
    """Outcome of Howard's algorithm.

    Attributes
    ----------
    value:
        The maximum cycle ratio ``lambda*``.
    cycle_nodes:
        Nodes of one critical cycle, in traversal order.
    cycle_edges:
        Edge indices (into the input graph) of that cycle, aligned with
        ``cycle_nodes`` (edge ``i`` leaves ``cycle_nodes[i]``).
    n_rounds:
        Number of policy-iteration rounds until the fixed point.
    """

    value: float
    cycle_nodes: tuple[int, ...]
    cycle_edges: tuple[int, ...]
    n_rounds: int


def _scc_howard(graph: RatioGraph, tol: float) -> HowardResult | None:
    """Run policy iteration inside one SCC; ``None`` when it has no cycle."""
    n, e = graph.n_nodes, graph.n_edges
    if n == 0 or e == 0:
        return None

    # CSR layout: edges sorted by source node.
    order = np.argsort(graph.src, kind="stable")
    src = graph.src[order]
    dst = graph.dst[order]
    weight = graph.weight[order]
    tokens = graph.tokens[order].astype(float)
    start = np.searchsorted(src, np.arange(n + 1))
    if np.any(start[1:] == start[:-1]):
        # Some node has no outgoing edge: inside an SCC that means the
        # "SCC" is a singleton without self-loop -> no cycle.
        return None

    # Initial policy: first out-edge of each node (CSR positions).
    policy = start[:n].copy()

    lam = np.zeros(n)
    pot = np.zeros(n)
    best_cycle: tuple[list[int], list[int]] = ([], [])
    max_rounds = _MAX_ROUNDS_FACTOR * max(n, 8)

    for round_no in range(1, max_rounds + 1):
        # ---- policy evaluation ------------------------------------------
        nxt = dst[policy]
        color = np.zeros(n, dtype=np.int8)  # 0 new, 1 in progress, 2 done
        lam_new = np.empty(n)
        pot_new = np.empty(n)
        best_val = -np.inf
        best_cycle = ([], [])

        for v0 in range(n):
            if color[v0] != 0:
                continue
            # Walk the policy chain until a previously seen node.
            chain: list[int] = []
            v = v0
            while color[v] == 0:
                color[v] = 1
                chain.append(v)
                v = int(nxt[v])
            if color[v] == 1:
                # Found a fresh cycle; v is its entry point within `chain`.
                cstart = chain.index(v)
                cycle = chain[cstart:]
                cw = float(weight[policy[cycle]].sum())
                ct = float(tokens[policy[cycle]].sum())
                if ct <= 0:
                    raise SolverError(
                        "policy cycle carries no token; run the liveness "
                        "check before Howard's algorithm"
                    )
                lam_c = cw / ct
                # Root potential 0, propagate backwards around the cycle.
                lam_new[v] = lam_c
                pot_new[v] = 0.0
                for u in reversed(cycle[1:]):
                    eidx = policy[u]
                    lam_new[u] = lam_c
                    pot_new[u] = weight[eidx] - lam_c * tokens[eidx] + pot_new[int(nxt[u])]
                for u in cycle:
                    color[u] = 2
                if lam_c > best_val:
                    best_val = lam_c
                    best_cycle = (cycle, [int(order[policy[u]]) for u in cycle])
                tree = chain[:cstart]
            else:
                tree = chain
            # Unwind tree nodes (their successor already has lam/pot).
            for u in reversed(tree):
                eidx = policy[u]
                w_next = int(nxt[u])
                lam_new[u] = lam_new[w_next]
                pot_new[u] = weight[eidx] - lam_new[u] * tokens[eidx] + pot_new[w_next]
                color[u] = 2

        lam, pot = lam_new, pot_new

        # ---- policy improvement -----------------------------------------
        # Phase 1: move towards successors with strictly larger lambda.
        gain_lam = lam[dst] - lam[src]
        # Phase 2 (only among lambda-ties): improve potentials.
        reduced = weight - lam[src] * tokens + pot[dst] - pot[src]

        improved = False
        for u in range(n):
            lo, hi = start[u], start[u + 1]
            seg = slice(lo, hi)
            g = gain_lam[seg]
            best_pos = int(np.argmax(g))
            if g[best_pos] > tol:
                policy[u] = lo + best_pos
                improved = True
                continue
            tie = np.flatnonzero(g > -tol)
            r = reduced[lo + tie]
            best_tie = int(np.argmax(r))
            if r[best_tie] > tol and lo + tie[best_tie] != policy[u]:
                policy[u] = lo + int(tie[best_tie])
                improved = True

        if not improved:
            cycle_nodes, cycle_edges = best_cycle
            return HowardResult(
                value=float(best_val),
                cycle_nodes=tuple(int(v) for v in cycle_nodes),
                cycle_edges=tuple(cycle_edges),
                n_rounds=round_no,
            )

    raise SolverError(
        f"Howard's algorithm did not converge within {max_rounds} rounds; "
        f"the tolerance {tol} may be too small for this weight scale"
    )


def max_cycle_ratio_howard(graph: RatioGraph, tol: float | None = None) -> HowardResult:
    """Maximum cycle ratio and one critical cycle, over all SCCs.

    Parameters
    ----------
    graph:
        Token graph; must be live (every cycle carries a token) and contain
        at least one cycle.
    tol:
        Improvement tolerance; defaults to ``1e-9`` times the weight scale.

    Raises
    ------
    SolverError
        If the graph is acyclic or policy iteration fails to converge.
    DeadlockError
        If some cycle carries no token.
    """
    graph.token_free_topological_order()  # liveness (raises DeadlockError)
    if tol is None:
        scale = float(np.abs(graph.weight).max()) if graph.n_edges else 1.0
        tol = 1e-9 * max(scale, 1.0)

    best: HowardResult | None = None
    for comp in graph.strongly_connected_components():
        if len(comp) == 1:
            v = comp[0]
            self_loops = [i for i in graph.out_edges(v) if int(graph.dst[i]) == v]
            if not self_loops:
                continue
            ratios = [
                (float(graph.weight[i]) / int(graph.tokens[i]), i)
                for i in self_loops
                # 0-token self-loops were excluded by the liveness check
            ]
            val, eidx = max(ratios)
            cand = HowardResult(val, (v,), (eidx,), 0)
        else:
            sub, node_map, edge_map = graph.subgraph(comp)
            res = _scc_howard(sub, tol)
            if res is None:
                continue
            cand = HowardResult(
                value=res.value,
                cycle_nodes=tuple(node_map[v] for v in res.cycle_nodes),
                cycle_edges=tuple(edge_map[i] for i in res.cycle_edges),
                n_rounds=res.n_rounds,
            )
        if best is None or cand.value > best.value:
            best = cand

    if best is None:
        raise SolverError("graph is acyclic: no cycle ratio exists")

    # Report the *exact* arithmetic ratio of the extracted cycle, which is
    # cleaner than the float accumulated during policy evaluation.
    exact = graph.cycle_ratio_of(best.cycle_edges)
    return HowardResult(exact, best.cycle_nodes, best.cycle_edges, best.n_rounds)
