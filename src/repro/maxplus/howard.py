"""Howard's policy iteration for the maximum cycle ratio.

Policy iteration on the "one chosen out-edge per node" relaxation
(Cochet-Terrasson, Cohen, Gaubert, Mc Gettrick, Quadrat 1998; Dasdan 2004):

1. every node picks one outgoing edge — the *policy* — giving a functional
   graph whose every component contains exactly one cycle;
2. each policy cycle is evaluated exactly (``sum w / sum t``) and node
   potentials ``h`` are propagated backwards along the policy;
3. edges that would improve ``(lambda, h)`` lexicographically replace the
   current policy choices; repeat until a fixed point.

At the fixed point the best policy cycle is a true critical cycle, which
is how the library *extracts* critical cycles (Figure 8 of the paper) and
why Howard is the default solver: it returns the exact cycle, not just a
bracketed value.  Graphs are processed per strongly connected component.

Prepare/solve split
-------------------
The solver is factored into a structural *preparation* phase and a
weight-dependent *solve* phase:

* :func:`prepare_howard` runs the liveness check, Tarjan's SCC
  decomposition and the per-component CSR edge sort — everything that
  depends only on the graph's **structure** (sources, destinations,
  tokens) — and returns a reusable :class:`HowardPlan`;
* :func:`solve_prepared` takes a plan plus an edge-weight vector and runs
  policy iteration only.

:func:`max_cycle_ratio_howard` simply composes the two.  The split is
what makes batched evaluation cheap: thousands of instances sharing one
TPN topology share a single plan and only re-stamp edge weights (see
:mod:`repro.engine`).  ``solve_prepared(prepare_howard(g), g.weight)``
is bit-identical to the one-shot call by construction.

Warm starts
-----------
Policy iteration converges from *any* initial policy, and on
slowly-varying weight sequences (a mapping-search neighborhood, a sweep
of nearby instances) the previous converged policy is usually one or two
improvement rounds away from the new fixed point.  Pass a mutable
:class:`HowardState` to :func:`solve_prepared` to carry the converged
policy from solve to solve:

>>> g = RatioGraph(2, [(0, 1, 3.0, 1), (1, 0, 5.0, 1), (0, 0, 7.0, 1)])
>>> plan = prepare_howard(g)
>>> state = HowardState()
>>> solve_prepared(plan, g.weight, state=state).value
7.0
>>> solve_prepared(plan, g.weight, state=state).n_rounds  # policy reused
1

The returned *value* is the exact maximum cycle ratio either way — only
the number of rounds and, on ties between equally-critical cycles, the
*extracted* cycle may differ from a cold start.  That is why the batch
engine exposes warm starting as an opt-in flag rather than the default
(see :class:`repro.engine.BatchEngine`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DeadlockError, SolverError
from .graph import RatioGraph

__all__ = [
    "HowardResult",
    "HowardPlan",
    "HowardState",
    "prepare_howard",
    "solve_prepared",
    "max_cycle_ratio_howard",
]

#: Safety cap multiplier on policy-iteration rounds.
_MAX_ROUNDS_FACTOR = 64


@dataclass(frozen=True)
class HowardResult:
    """Outcome of Howard's algorithm.

    Attributes
    ----------
    value:
        The maximum cycle ratio ``lambda*``.
    cycle_nodes:
        Nodes of one critical cycle, in traversal order.
    cycle_edges:
        Edge indices (into the input graph) of that cycle, aligned with
        ``cycle_nodes`` (edge ``i`` leaves ``cycle_nodes[i]``).
    n_rounds:
        Number of policy-iteration rounds until the fixed point.
    """

    value: float
    cycle_nodes: tuple[int, ...]
    cycle_edges: tuple[int, ...]
    n_rounds: int


@dataclass
class HowardState:
    """Mutable warm-start carrier for repeated solves on one plan.

    Holds the last converged policy of each multi-node SCC (CSR edge
    positions, aligned with :attr:`HowardPlan.components`).  A state is
    bound to the plan that produced it: policies index that plan's CSR
    layouts, so never share one state across different topologies.

    ``policies`` starts as ``None`` and is allocated on the first solve;
    singleton components (whose "policy" is trivial) store ``None``.
    """

    policies: list[np.ndarray | None] | None = None


@dataclass(frozen=True)
class _PreparedScc:
    """One multi-node SCC with its CSR edge layout precomputed.

    ``order`` sorts the component's local edges by source node;
    ``edge_map`` maps local (pre-sort) edge indices back to the global
    graph, so fresh global weights are stamped into CSR order with
    ``weights[edge_map][order]``.
    """

    n: int
    node_map: tuple[int, ...]
    edge_map: np.ndarray
    order: np.ndarray
    src: np.ndarray
    dst: np.ndarray
    tokens: np.ndarray
    start: np.ndarray


@dataclass(frozen=True)
class _PreparedSingleton:
    """A singleton SCC whose cycles are its self-loops."""

    node: int
    self_loops: tuple[int, ...]


@dataclass(frozen=True)
class HowardPlan:
    """Structural preparation of a :class:`RatioGraph` for repeated solves.

    Holds the SCC decomposition (in Tarjan order, so candidate comparison
    is reproducible), the per-SCC CSR layouts, and the global token
    vector used for the exact critical-cycle ratio.  A plan depends only
    on ``(src, dst, tokens)`` — never on edge weights — so one plan
    serves every weight stamping of the same topology.
    """

    n_nodes: int
    n_edges: int
    tokens: np.ndarray
    components: tuple[_PreparedScc | _PreparedSingleton, ...]


def prepare_howard(graph: RatioGraph) -> HowardPlan:
    """Structure-only preparation: liveness, SCCs, CSR sorts.

    Raises
    ------
    DeadlockError
        If some cycle carries no token (the liveness check fails).
    """
    graph.token_free_topological_order()  # liveness (raises DeadlockError)

    components: list[_PreparedScc | _PreparedSingleton] = []
    for comp in graph.strongly_connected_components():
        if len(comp) == 1:
            v = comp[0]
            self_loops = tuple(
                i for i in graph.out_edges(v) if int(graph.dst[i]) == v
            )
            if self_loops:
                components.append(_PreparedSingleton(v, self_loops))
            continue
        sub, node_map, edge_map = graph.subgraph(comp)
        n, e = sub.n_nodes, sub.n_edges
        if n == 0 or e == 0:
            continue
        order = np.argsort(sub.src, kind="stable")
        src = sub.src[order]
        start = np.searchsorted(src, np.arange(n + 1))
        if np.any(start[1:] == start[:-1]):
            # Some node has no outgoing edge: inside an SCC that means the
            # "SCC" is a singleton without self-loop -> no cycle.
            continue
        components.append(
            _PreparedScc(
                n=n,
                node_map=tuple(int(v) for v in node_map),
                edge_map=np.asarray(edge_map, dtype=np.int64),
                order=order,
                src=src,
                dst=sub.dst[order],
                tokens=sub.tokens[order].astype(float),
                start=start,
            )
        )
    return HowardPlan(
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        tokens=graph.tokens,
        components=tuple(components),
    )


def _scc_howard_csr(
    scc: _PreparedScc,
    weight: np.ndarray,
    tol: float,
    policy0: np.ndarray | None = None,
) -> tuple[HowardResult, np.ndarray]:
    """Policy iteration inside one prepared SCC (CSR edge order).

    ``policy0`` warm-starts the iteration from a previously converged
    policy of the *same* prepared SCC; any valid policy converges to the
    same ``lambda*``.  Returns the result and the converged policy.
    """
    n = scc.n
    e = int(weight.size)
    src, dst, tokens, start, order = scc.src, scc.dst, scc.tokens, scc.start, scc.order

    if policy0 is not None and policy0.shape == (n,):
        # Warm start from the carried policy (copied: the caller's state
        # must stay intact if this solve fails to converge).
        policy = policy0.copy()
    else:
        # Cold start: first out-edge of each node (CSR positions).
        policy = start[:n].copy()
    edge_pos = np.arange(e, dtype=np.int64)
    seg_starts = start[:n]
    # Plain-Python mirrors for the sequential evaluation walk below —
    # list indexing is several times cheaper than numpy scalar indexing
    # and float arithmetic on the extracted values is bit-identical.
    weight_l = weight.tolist()
    tokens_l = tokens.tolist()

    lam = np.zeros(n)
    pot = np.zeros(n)
    best_cycle: tuple[list[int], list[int]] = ([], [])
    max_rounds = _MAX_ROUNDS_FACTOR * max(n, 8)

    for round_no in range(1, max_rounds + 1):
        # ---- policy evaluation ------------------------------------------
        nxt = dst[policy]
        nxt_l = nxt.tolist()
        policy_l = policy.tolist()
        color = [0] * n  # 0 new, 1 in progress, 2 done
        lam_new: list[float] = [0.0] * n
        pot_new: list[float] = [0.0] * n
        best_val = -np.inf
        best_cycle = ([], [])

        for v0 in range(n):
            if color[v0] != 0:
                continue
            # Walk the policy chain until a previously seen node.
            chain: list[int] = []
            v = v0
            while color[v] == 0:
                color[v] = 1
                chain.append(v)
                v = nxt_l[v]
            if color[v] == 1:
                # Found a fresh cycle; v is its entry point within `chain`.
                cstart = chain.index(v)
                cycle = chain[cstart:]
                cw = float(weight[policy[cycle]].sum())
                ct = float(tokens[policy[cycle]].sum())
                if ct <= 0:
                    raise SolverError(
                        "policy cycle carries no token; run the liveness "
                        "check before Howard's algorithm"
                    )
                lam_c = cw / ct
                # Root potential 0, propagate backwards around the cycle.
                lam_new[v] = lam_c
                pot_new[v] = 0.0
                for u in reversed(cycle[1:]):
                    eidx = policy_l[u]
                    lam_new[u] = lam_c
                    pot_new[u] = weight_l[eidx] - lam_c * tokens_l[eidx] + pot_new[nxt_l[u]]
                for u in cycle:
                    color[u] = 2
                if lam_c > best_val:
                    best_val = lam_c
                    best_cycle = (cycle, [int(order[policy[u]]) for u in cycle])
                tree = chain[:cstart]
            else:
                tree = chain
            # Unwind tree nodes (their successor already has lam/pot).
            for u in reversed(tree):
                eidx = policy_l[u]
                w_next = nxt_l[u]
                lam_new[u] = lam_new[w_next]
                pot_new[u] = weight_l[eidx] - lam_new[u] * tokens_l[eidx] + pot_new[w_next]
                color[u] = 2

        lam, pot = np.asarray(lam_new), np.asarray(pot_new)

        # ---- policy improvement (vectorized over CSR segments) ----------
        # Phase 1: move towards successors with strictly larger lambda.
        gain_lam = lam[dst] - lam[src]
        # Phase 2 (only among lambda-ties): improve potentials.
        reduced = weight - lam[src] * tokens + pot[dst] - pot[src]

        # Per-node segment maxima; "first index attaining the max" matches
        # np.argmax's tie-breaking in the per-node formulation.
        seg_max_g = np.maximum.reduceat(gain_lam, seg_starts)
        first_g = np.minimum.reduceat(
            np.where(gain_lam == seg_max_g[src], edge_pos, e), seg_starts
        )
        phase1 = seg_max_g > tol

        tie = gain_lam > -tol
        r_masked = np.where(tie, reduced, -np.inf)
        seg_max_r = np.maximum.reduceat(r_masked, seg_starts)
        first_r = np.minimum.reduceat(
            np.where(tie & (r_masked == seg_max_r[src]), edge_pos, e), seg_starts
        )
        phase2 = ~phase1 & (seg_max_r > tol) & (first_r != policy)

        if not (np.any(phase1) or np.any(phase2)):
            cycle_nodes, cycle_edges = best_cycle
            return HowardResult(
                value=float(best_val),
                cycle_nodes=tuple(int(v) for v in cycle_nodes),
                cycle_edges=tuple(cycle_edges),
                n_rounds=round_no,
            ), policy
        policy = np.where(phase1, first_g, np.where(phase2, first_r, policy))

    raise SolverError(
        f"Howard's algorithm did not converge within {max_rounds} rounds; "
        f"the tolerance {tol} may be too small for this weight scale"
    )


def solve_prepared(
    plan: HowardPlan,
    weight: np.ndarray,
    tol: float | None = None,
    state: HowardState | None = None,
) -> HowardResult:
    """Run policy iteration on a prepared plan with fresh edge weights.

    Parameters
    ----------
    plan:
        Structural preparation from :func:`prepare_howard`.
    weight:
        Edge weights aligned with the original graph's edge indices.
    tol:
        Improvement tolerance; defaults to ``1e-9`` times the weight scale.
    state:
        Optional warm-start carrier.  When given, each SCC's policy
        iteration starts from the policy the *previous* solve with this
        state converged to, and the converged policies are written back.
        The state must only ever be used with the plan it was first
        solved on.  The returned ``value`` is the exact maximum cycle
        ratio regardless; on exact ties between distinct critical cycles
        the extracted cycle may differ from a cold start's.

    Raises
    ------
    SolverError
        If the graph is acyclic or policy iteration fails to converge.
    """
    weight = np.asarray(weight, dtype=float)
    if tol is None:
        scale = float(np.abs(weight).max()) if plan.n_edges else 1.0
        tol = 1e-9 * max(scale, 1.0)

    if state is not None and state.policies is None:
        state.policies = [None] * len(plan.components)

    best: HowardResult | None = None
    for ci, comp in enumerate(plan.components):
        if isinstance(comp, _PreparedSingleton):
            ratios = [
                (float(weight[i]) / int(plan.tokens[i]), i)
                for i in comp.self_loops
                # 0-token self-loops were excluded by the liveness check
            ]
            val, eidx = max(ratios)
            cand = HowardResult(val, (comp.node,), (eidx,), 0)
        else:
            policy0 = state.policies[ci] if state is not None else None
            res, policy = _scc_howard_csr(
                comp, weight[comp.edge_map][comp.order], tol, policy0=policy0
            )
            if state is not None:
                state.policies[ci] = policy
            cand = HowardResult(
                value=res.value,
                cycle_nodes=tuple(comp.node_map[v] for v in res.cycle_nodes),
                cycle_edges=tuple(int(comp.edge_map[i]) for i in res.cycle_edges),
                n_rounds=res.n_rounds,
            )
        if best is None or cand.value > best.value:
            best = cand

    if best is None:
        raise SolverError("graph is acyclic: no cycle ratio exists")

    # Report the *exact* arithmetic ratio of the extracted cycle, which is
    # cleaner than the float accumulated during policy evaluation.
    idx = np.asarray(list(best.cycle_edges), dtype=np.int64)
    total_w = float(weight[idx].sum())
    total_t = int(plan.tokens[idx].sum())
    if total_t == 0:
        raise DeadlockError("cycle carries no token; its ratio is infinite")
    return HowardResult(total_w / total_t, best.cycle_nodes, best.cycle_edges, best.n_rounds)


def max_cycle_ratio_howard(graph: RatioGraph, tol: float | None = None) -> HowardResult:
    """Maximum cycle ratio and one critical cycle, over all SCCs.

    Parameters
    ----------
    graph:
        Token graph; must be live (every cycle carries a token) and contain
        at least one cycle.
    tol:
        Improvement tolerance; defaults to ``1e-9`` times the weight scale.

    Raises
    ------
    SolverError
        If the graph is acyclic or policy iteration fails to converge.
    DeadlockError
        If some cycle carries no token.
    """
    return solve_prepared(prepare_howard(graph), graph.weight, tol)
