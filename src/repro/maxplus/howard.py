"""Howard's policy iteration for the maximum cycle ratio.

Policy iteration on the "one chosen out-edge per node" relaxation
(Cochet-Terrasson, Cohen, Gaubert, Mc Gettrick, Quadrat 1998; Dasdan 2004):

1. every node picks one outgoing edge — the *policy* — giving a functional
   graph whose every component contains exactly one cycle;
2. each policy cycle is evaluated exactly (``sum w / sum t``) and node
   potentials ``h`` are propagated backwards along the policy;
3. edges that would improve ``(lambda, h)`` lexicographically replace the
   current policy choices; repeat until a fixed point.

At the fixed point the best policy cycle is a true critical cycle, which
is how the library *extracts* critical cycles (Figure 8 of the paper) and
why Howard is the default solver: it returns the exact cycle, not just a
bracketed value.  Graphs are processed per strongly connected component.

Prepare/solve split
-------------------
The solver is factored into a structural *preparation* phase and a
weight-dependent *solve* phase:

* :func:`prepare_howard` runs the liveness check, Tarjan's SCC
  decomposition and the per-component CSR edge sort — everything that
  depends only on the graph's **structure** (sources, destinations,
  tokens) — and returns a reusable :class:`HowardPlan`;
* :func:`solve_prepared` takes a plan plus an edge-weight vector and runs
  policy iteration only.

:func:`max_cycle_ratio_howard` simply composes the two.  The split is
what makes batched evaluation cheap: thousands of instances sharing one
TPN topology share a single plan and only re-stamp edge weights (see
:mod:`repro.engine`).  ``solve_prepared(prepare_howard(g), g.weight)``
is bit-identical to the one-shot call by construction.

Warm starts
-----------
Policy iteration converges from *any* initial policy, and on
slowly-varying weight sequences (a mapping-search neighborhood, a sweep
of nearby instances) the previous converged policy is usually one or two
improvement rounds away from the new fixed point.  Pass a mutable
:class:`HowardState` to :func:`solve_prepared` to carry the converged
policy from solve to solve:

>>> g = RatioGraph(2, [(0, 1, 3.0, 1), (1, 0, 5.0, 1), (0, 0, 7.0, 1)])
>>> plan = prepare_howard(g)
>>> state = HowardState()
>>> solve_prepared(plan, g.weight, state=state).value
7.0
>>> solve_prepared(plan, g.weight, state=state).n_rounds  # policy reused
1

The returned *value* is the exact maximum cycle ratio either way — only
the number of rounds and, on ties between equally-critical cycles, the
*extracted* cycle may differ from a cold start.  That is why the batch
engine exposes warm starting as an opt-in flag rather than the default
(see :class:`repro.engine.BatchEngine`).

A state is bound to the plan of its first solve: policies index that
plan's CSR layouts, so reusing the state with a *different* plan would
silently read the wrong edges.  Both solve entry points raise
:class:`~repro.errors.SolverError` on such a mismatch.

Lockstep batches
----------------
:func:`solve_prepared_many` runs policy iteration for ``B`` weight
stampings of **one** plan simultaneously: the policy matrix is
``(B, n)``, policy evaluation is a vectorized functional-graph traversal
(pointer-doubling successor hops instead of the scalar Python chain
walk), policy improvement broadcasts the CSR ``reduceat`` segments over
a ``(B, e)`` weight matrix, and a convergence mask retires finished rows
so they stop paying per-round cost.  Row ``b`` of the result is
bit-identical to ``solve_prepared(plan, weights[b])`` — same policy
trajectory, same tie-breaking, same extracted cycle, same round count —
because every float operation mirrors the scalar path element for
element (see :func:`_scc_howard_csr_many`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..errors import DeadlockError, SolverError
from ..telemetry import TELEMETRY
from .graph import RatioGraph

__all__ = [
    "HowardResult",
    "HowardPlan",
    "HowardState",
    "prepare_howard",
    "solve_prepared",
    "solve_prepared_many",
    "max_cycle_ratio_howard",
]

#: Safety cap multiplier on policy-iteration rounds.
_MAX_ROUNDS_FACTOR = 64


@dataclass(frozen=True)
class HowardResult:
    """Outcome of Howard's algorithm.

    Attributes
    ----------
    value:
        The maximum cycle ratio ``lambda*``.
    cycle_nodes:
        Nodes of one critical cycle, in traversal order.
    cycle_edges:
        Edge indices (into the input graph) of that cycle, aligned with
        ``cycle_nodes`` (edge ``i`` leaves ``cycle_nodes[i]``).
    n_rounds:
        Number of policy-iteration rounds until the fixed point.
    """

    value: float
    cycle_nodes: tuple[int, ...]
    cycle_edges: tuple[int, ...]
    n_rounds: int


@dataclass
class HowardState:
    """Mutable warm-start carrier for repeated solves on one plan.

    Holds the last converged policy of each multi-node SCC (CSR edge
    positions, aligned with :attr:`HowardPlan.components`).  A state is
    bound to the plan of its first solve (``bound_plan``): policies
    index that plan's CSR layouts, so a state reused with a *different*
    plan would silently gather the wrong edges — the solvers raise
    :class:`~repro.errors.SolverError` on such a mismatch instead.

    ``policies`` starts as ``None`` and is allocated on the first solve;
    singleton components (whose "policy" is trivial) store ``None``.
    """

    policies: list[npt.NDArray[np.int64] | None] | None = None
    bound_plan: "HowardPlan | None" = None


@dataclass(frozen=True)
class _PreparedScc:
    """One multi-node SCC with its CSR edge layout precomputed.

    ``order`` sorts the component's local edges by source node;
    ``edge_map`` maps local (pre-sort) edge indices back to the global
    graph, so fresh global weights are stamped into CSR order with
    ``weights[edge_map][order]``.
    """

    n: int
    node_map: tuple[int, ...]
    edge_map: npt.NDArray[np.int64]
    order: npt.NDArray[np.int64]
    src: npt.NDArray[np.int64]
    dst: npt.NDArray[np.int64]
    tokens: npt.NDArray[np.int64]
    start: npt.NDArray[np.int64]


@dataclass(frozen=True)
class _PreparedSingleton:
    """A singleton SCC whose cycles are its self-loops."""

    node: int
    self_loops: tuple[int, ...]


@dataclass(frozen=True)
class HowardPlan:
    """Structural preparation of a :class:`RatioGraph` for repeated solves.

    Holds the SCC decomposition (in Tarjan order, so candidate comparison
    is reproducible), the per-SCC CSR layouts, and the global token
    vector used for the exact critical-cycle ratio.  A plan depends only
    on ``(src, dst, tokens)`` — never on edge weights — so one plan
    serves every weight stamping of the same topology.
    """

    n_nodes: int
    n_edges: int
    tokens: npt.NDArray[np.int64]
    components: tuple[_PreparedScc | _PreparedSingleton, ...]


def prepare_howard(graph: RatioGraph) -> HowardPlan:
    """Structure-only preparation: liveness, SCCs, CSR sorts.

    Raises
    ------
    DeadlockError
        If some cycle carries no token (the liveness check fails).
    """
    graph.token_free_topological_order()  # liveness (raises DeadlockError)

    components: list[_PreparedScc | _PreparedSingleton] = []
    for comp in graph.strongly_connected_components():
        if len(comp) == 1:
            v = comp[0]
            self_loops = tuple(
                i for i in graph.out_edges(v) if int(graph.dst[i]) == v
            )
            if self_loops:
                components.append(_PreparedSingleton(v, self_loops))
            continue
        sub, node_map, edge_map = graph.subgraph(comp)
        n, e = sub.n_nodes, sub.n_edges
        if n == 0 or e == 0:
            continue
        order = np.argsort(sub.src, kind="stable")
        src = sub.src[order]
        start = np.searchsorted(src, np.arange(n + 1))
        if np.any(start[1:] == start[:-1]):
            # Some node has no outgoing edge: inside an SCC that means the
            # "SCC" is a singleton without self-loop -> no cycle.
            continue
        components.append(
            _PreparedScc(
                n=n,
                node_map=tuple(int(v) for v in node_map),
                edge_map=np.asarray(edge_map, dtype=np.int64),
                order=order,
                src=src,
                dst=sub.dst[order],
                tokens=sub.tokens[order].astype(float),
                start=start,
            )
        )
    return HowardPlan(
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        tokens=graph.tokens,
        components=tuple(components),
    )


def _scc_howard_csr(
    scc: _PreparedScc,
    weight: npt.NDArray[np.float64],
    tol: float,
    policy0: npt.NDArray[np.int64] | None = None,
) -> tuple[HowardResult, npt.NDArray[np.int64]]:
    """Policy iteration inside one prepared SCC (CSR edge order).

    ``policy0`` warm-starts the iteration from a previously converged
    policy of the *same* prepared SCC; any valid policy converges to the
    same ``lambda*``.  Returns the result and the converged policy.
    """
    n = scc.n
    e = int(weight.size)
    src, dst, tokens, start, order = scc.src, scc.dst, scc.tokens, scc.start, scc.order

    if policy0 is not None and policy0.shape == (n,):
        # Warm start from the carried policy (copied: the caller's state
        # must stay intact if this solve fails to converge).
        policy = policy0.copy()
    else:
        # Cold start: first out-edge of each node (CSR positions).
        policy = start[:n].copy()
    edge_pos = np.arange(e, dtype=np.int64)
    seg_starts = start[:n]
    # Plain-Python mirrors for the sequential evaluation walk below —
    # list indexing is several times cheaper than numpy scalar indexing
    # and float arithmetic on the extracted values is bit-identical.
    weight_l = weight.tolist()
    tokens_l = tokens.tolist()

    lam = np.zeros(n)
    pot = np.zeros(n)
    best_cycle: tuple[list[int], list[int]] = ([], [])
    max_rounds = _MAX_ROUNDS_FACTOR * max(n, 8)

    for round_no in range(1, max_rounds + 1):
        # ---- policy evaluation ------------------------------------------
        nxt = dst[policy]
        nxt_l = nxt.tolist()
        policy_l = policy.tolist()
        color = [0] * n  # 0 new, 1 in progress, 2 done
        lam_new: list[float] = [0.0] * n
        pot_new: list[float] = [0.0] * n
        best_val = -np.inf
        best_cycle = ([], [])

        for v0 in range(n):
            if color[v0] != 0:
                continue
            # Walk the policy chain until a previously seen node.
            chain: list[int] = []
            v = v0
            while color[v] == 0:
                color[v] = 1
                chain.append(v)
                v = nxt_l[v]
            if color[v] == 1:
                # Found a fresh cycle; v is its entry point within `chain`.
                cstart = chain.index(v)
                cycle = chain[cstart:]
                # Sequential accumulation in cycle order — the association
                # the lockstep solver reproduces with one vectorized add
                # per hop (numpy's pairwise .sum() would not be).
                cw = 0.0
                ct = 0.0
                for u in cycle:
                    eidx = policy_l[u]
                    cw += weight_l[eidx]
                    ct += tokens_l[eidx]
                if ct <= 0:
                    raise SolverError(
                        "policy cycle carries no token; run the liveness "
                        "check before Howard's algorithm"
                    )
                lam_c = cw / ct
                # Root potential 0, propagate backwards around the cycle.
                lam_new[v] = lam_c
                pot_new[v] = 0.0
                for u in reversed(cycle[1:]):
                    eidx = policy_l[u]
                    lam_new[u] = lam_c
                    pot_new[u] = weight_l[eidx] - lam_c * tokens_l[eidx] + pot_new[nxt_l[u]]
                for u in cycle:
                    color[u] = 2
                if lam_c > best_val:
                    best_val = lam_c
                    best_cycle = (cycle, [int(order[policy[u]]) for u in cycle])
                tree = chain[:cstart]
            else:
                tree = chain
            # Unwind tree nodes (their successor already has lam/pot).
            for u in reversed(tree):
                eidx = policy_l[u]
                w_next = nxt_l[u]
                lam_new[u] = lam_new[w_next]
                pot_new[u] = weight_l[eidx] - lam_new[u] * tokens_l[eidx] + pot_new[w_next]
                color[u] = 2

        lam, pot = np.asarray(lam_new), np.asarray(pot_new)

        # ---- policy improvement (vectorized over CSR segments) ----------
        # Phase 1: move towards successors with strictly larger lambda.
        gain_lam = lam[dst] - lam[src]
        # Phase 2 (only among lambda-ties): improve potentials.
        reduced = weight - lam[src] * tokens + pot[dst] - pot[src]

        # Per-node segment maxima; "first index attaining the max" matches
        # np.argmax's tie-breaking in the per-node formulation.
        seg_max_g = np.maximum.reduceat(gain_lam, seg_starts)
        first_g = np.minimum.reduceat(
            np.where(gain_lam == seg_max_g[src], edge_pos, e), seg_starts
        )
        phase1 = seg_max_g > tol

        tie = gain_lam > -tol
        r_masked = np.where(tie, reduced, -np.inf)
        seg_max_r = np.maximum.reduceat(r_masked, seg_starts)
        first_r = np.minimum.reduceat(
            np.where(tie & (r_masked == seg_max_r[src]), edge_pos, e), seg_starts
        )
        phase2 = ~phase1 & (seg_max_r > tol) & (first_r != policy)

        if not (np.any(phase1) or np.any(phase2)):
            cycle_nodes, cycle_edges = best_cycle
            return HowardResult(
                value=float(best_val),
                cycle_nodes=tuple(int(v) for v in cycle_nodes),
                cycle_edges=tuple(cycle_edges),
                n_rounds=round_no,
            ), policy
        policy = np.where(phase1, first_g, np.where(phase2, first_r, policy))

    raise SolverError(
        f"Howard's algorithm did not converge within {max_rounds} rounds; "
        f"the tolerance {tol} may be too small for this weight scale"
    )


def _bind_state(state: HowardState, plan: HowardPlan) -> None:
    """Bind ``state`` to ``plan`` on first use; reject cross-plan reuse."""
    if state.bound_plan is None:
        state.bound_plan = plan
    elif state.bound_plan is not plan:
        raise SolverError(
            "HowardState is bound to a different HowardPlan: warm-start "
            "policies index the CSR layout of the plan they converged on, "
            "so a shared state cannot be reused across topologies — use "
            "one state per plan"
        )
    if state.policies is None:
        state.policies = [None] * len(plan.components)


def _scc_howard_csr_many(
    scc: _PreparedScc,
    W: npt.NDArray[np.float64],
    tol_rows: npt.NDArray[np.float64],
    policy0_rows: list[npt.NDArray[np.int64] | None] | None,
    node_map_arr: npt.NDArray[np.int64],
    edge_gmap: npt.NDArray[np.int64],
) -> tuple[list[tuple[float, list[int], list[int], int]], npt.NDArray[np.int64]]:
    """Lockstep policy iteration inside one prepared SCC for ``B`` rows.

    ``W`` is the ``(B, e)`` CSR-ordered weight matrix (one stamping per
    row), ``tol_rows`` the per-row improvement tolerance,
    ``policy0_rows`` optional per-row warm-start policies, and
    ``node_map_arr`` / ``edge_gmap`` the local-node -> caller-node and
    CSR-position -> caller-edge index maps (applied in bulk during
    extraction).  Returns one ``(value, cycle_nodes, cycle_edges,
    n_rounds)`` tuple per row — ids already in caller space — plus the
    ``(B, n)`` matrix of converged policies.

    Bit-identity with :func:`_scc_howard_csr`, row by row:

    * policy **evaluation** walks the functional graph with
      pointer-doubling hops — ``nxt^(2^k)`` successor tables — to find
      each row's cycles, the per-cycle entry node (the first cycle node
      on the path from the smallest node of the cycle's basin, which is
      exactly where the scalar chain walk first re-enters), and each
      node's distance to its entry.  Cycle weight/token sums accumulate
      sequentially in cycle order (one vectorized add per hop) and
      potentials peel outward from the entries one distance level at a
      time, so every float sees the same operands in the same
      association as the scalar recurrence.
    * policy **improvement** broadcasts the scalar path's ``reduceat``
      segments over the batch axis — identical expressions, identical
      CSR-position tie-breaking.
    * a **convergence mask** retires rows the round they stop improving
      (recording that round's evaluation, like the scalar early return)
      and compresses them out of the active arrays.
    """
    B, e = W.shape
    n = scc.n
    src, dst, tokens, start = scc.src, scc.dst, scc.tokens, scc.start
    seg_starts = start[:n]
    # Padded-dense layout of the CSR segments: slot (v, j) holds the
    # CSR position of node v's j-th out-edge, or the sentinel column e.
    # Per-node maxima become dense reductions over the slot axis instead
    # of reduceat's per-segment inner loops; np.argmax's first-tie rule
    # over CSR-ordered slots is exactly the scalar tie-breaking.
    deg = np.diff(start)
    dmax = int(deg.max())
    if n * dmax <= 4 * e:
        pad_idx = seg_starts[:, None] + np.arange(dmax)
        pad_idx = np.where(np.arange(dmax) < deg[:, None], pad_idx, e).ravel()
    else:  # a high-degree hub would blow the dense layout up: reduceat
        pad_idx = None
    # The traversal state is pure indices; int32 halves the memory
    # traffic of the doubling chains (the dominant per-round cost).
    idx_dt = np.int32 if (B * n < 2 ** 31 and B * e < 2 ** 31) else np.int64
    dst_i = dst.astype(idx_dt)
    edge_pos = np.arange(e, dtype=idx_dt)
    node_ids = np.arange(n, dtype=idx_dt)
    cold = start[:n].astype(idx_dt)

    policy = np.empty((B, n), dtype=idx_dt)
    for b in range(B):
        p0 = policy0_rows[b] if policy0_rows is not None else None
        policy[b] = p0 if (p0 is not None and p0.shape == (n,)) else cold

    rows = np.arange(B, dtype=np.int64)  # active-row -> original-row map
    W_act = W
    tol_act = np.asarray(tol_rows, dtype=float)
    results: list[tuple[float, list[int], list[int], int] | None] = [None] * B
    out_policy = np.empty((B, n), dtype=np.int64)
    max_rounds = _MAX_ROUNDS_FACTOR * max(n, 8)

    for round_no in range(1, max_rounds + 1):
        A = rows.size

        # Straggler hand-off: when only a small fraction of rows is
        # still iterating, the per-round lockstep setup outweighs the
        # scalar chain walk — finish each remaining row with the scalar
        # kernel, seeded from its current mid-iteration policy.  The
        # trajectory (and hence every result bit) is identical: both
        # kernels perform the same per-round arithmetic, so "rounds
        # 1..k in lockstep, k+1.. in the scalar kernel" is the same
        # computation as either kernel alone.
        if A <= (B >> 3):
            if TELEMETRY.enabled:
                TELEMETRY.count("howard.straggler_handoffs", A)
            for a in range(A):
                b = int(rows[a])
                res, polc = _scc_howard_csr(
                    scc, W_act[a], float(tol_act[a]), policy0=policy[a]
                )
                results[b] = (
                    res.value,
                    node_map_arr.take(np.asarray(res.cycle_nodes,
                                                 dtype=np.int64)).tolist(),
                    scc.edge_map.take(np.asarray(res.cycle_edges,
                                                 dtype=np.int64)).tolist(),
                    res.n_rounds + round_no - 1,
                )
                out_policy[b] = polc
            return results, out_policy  # type: ignore[return-value]

        # ---- policy evaluation (vectorized functional-graph traversal) --
        # The traversal structure depends on the policy alone, never the
        # weights — and whole batches often share one policy: every row
        # starts round 1 from the same cold (or carried warm) policy, and
        # sweep neighbors follow near-identical improvement trajectories.
        # When all rows agree, the doubling chains run once and broadcast.
        shared = A > 1 and bool((policy == policy[0]).all())
        uniq = policy[:1] if shared else policy
        U = uniq.shape[0]
        nxt_u = dst_i[uniq]
        base_u = (np.arange(U, dtype=idx_dt) * n)[:, None]
        nxt_fu = nxt_u + base_u

        # One doubling chain computes the nxt^(2^k) hop ladder (shared by
        # every traversal below) and running path minima.  After 2^k >= n
        # hops every node lands on its cycle (the hop image = cycle
        # nodes) and, for any cycle node, the >= n-step path minimum is
        # exactly the minimum node id on its cycle — the canonical id.
        ladder = []
        hop = nxt_fu
        pm = np.empty((U, n), dtype=idx_dt)
        pm[:] = node_ids
        step = 1
        while step < n:
            ladder.append(hop)
            pm = np.minimum(pm, pm.take(hop))
            hop = hop.take(hop)
            step *= 2
        ladder.append(hop)  # nxt^(2^K), 2^K >= n: coverage for any path
        onc_u = np.zeros(U * n, dtype=bool)
        onc_u[hop.ravel()] = True
        onc_u = onc_u.reshape(U, n)

        # First cycle node on each node's policy path (doubling with
        # "first found" semantics).  Most nodes resolve within a hop or
        # two, so later rungs update only the still-missing positions.
        T_flat = np.where(onc_u, node_ids, -1).ravel()
        for hop_k in ladder:
            missing = np.flatnonzero(T_flat < 0)
            if not missing.size:
                break
            T_flat[missing] = T_flat.take(hop_k.ravel().take(missing))
        T = T_flat.reshape(U, n)

        # Entry node of each cycle: the first cycle node reached from the
        # smallest node of the cycle's basin — where the scalar walk
        # (ascending v0) first re-enters, i.e. the cycle's root.
        cid_u = pm.take(T + base_u)  # per node: its cycle's canonical id
        vmin_u = np.full((U, n), n, dtype=idx_dt)
        np.minimum.at(vmin_u, (np.arange(U)[:, None], cid_u), node_ids)
        ent_u = T.take(np.minimum(vmin_u, n - 1) + base_u)
        is_entry_u = ent_u.take(cid_u + base_u) == node_ids

        # Distance of every node to its entry (entry = 0): same ladder,
        # same sparse-update pattern.  A node at distance d in
        # [2^k, 2^{k+1}) resolves at rung k once its 2^k-hop target is
        # resolved below 2^k.
        dist_uf = np.where(
            is_entry_u, np.array(0, idx_dt), np.array(-1, idx_dt)
        ).ravel()
        step = 1
        for hop_k in ladder:
            missing = np.flatnonzero(dist_uf < 0)
            if not missing.size:
                break
            cand = dist_uf.take(hop_k.ravel().take(missing))
            found = cand >= 0
            dist_uf[missing[found]] = cand[found] + step
            step *= 2
        dist_u = dist_uf.reshape(U, n)

        # Structural per-cycle tables, still in unique-policy space:
        # token sums are integer-valued, hence exact under any summation
        # order — one bincount each for token totals and cycle lengths.
        tvn_u = tokens.take(uniq)
        cidf_u = (cid_u + base_u).ravel()
        ct_u = np.bincount(
            cidf_u, weights=np.where(onc_u.ravel(), tvn_u.ravel(), 0.0),
            minlength=U * n,
        )
        len_u = np.bincount(cidf_u, weights=onc_u.ravel(), minlength=U * n)

        # ---- expand the structure back to row space ---------------------
        # Shared case: broadcast the single-policy structure over rows
        # (materialized only where an op needs it).  Unshared case: the
        # per-row structure *is* the row-space structure, zero copies.
        arow = np.arange(A)
        base = (np.arange(A, dtype=idx_dt) * n)[:, None]
        if shared:
            nxt_f = nxt_u + base
            oncycle = np.broadcast_to(onc_u, (A, n))
            cid = np.broadcast_to(cid_u, (A, n))
            is_entry = np.broadcast_to(is_entry_u, (A, n))
            dist = np.broadcast_to(dist_u, (A, n))
        else:
            nxt_f = nxt_fu  # base_u == base when U == A
            oncycle, cid, is_entry, dist = onc_u, cid_u, is_entry_u, dist_u
        nxt_flat = nxt_f.ravel()
        cid_f = cid + base
        cid_flat = cid_f.ravel()
        onc_flat = oncycle.ravel()
        dist_flat = dist.ravel()

        # Per-node policy-edge weight/token tables (numeric, per row).
        wvn = W_act.ravel().take(policy + (np.arange(A, dtype=idx_dt) * e)[:, None])
        tvn = tokens.take(policy)
        wvn_flat = wvn.ravel()

        lane_rows, lane_entry = np.nonzero(is_entry)
        C = lane_rows.size
        entry_f = lane_rows * n + lane_entry
        cid_entry_f = cid_flat.take(entry_f)
        # (unique-policy, cycle-id) key of each row lane, addressing the
        # structural tables computed above.
        lane_u_key = cid_u.ravel().take(lane_entry) if shared else cid_entry_f

        ct = ct_u.take(lane_u_key)
        if (ct <= 0).any():
            raise SolverError(
                "policy cycle carries no token; run the liveness "
                "check before Howard's algorithm"
            )
        len_lane = len_u.take(lane_u_key).astype(np.int64)
        l_max = int(len_lane.max())

        # Lay every cycle out in walk order: node at walk position k of
        # its cycle (entry = 0, then successor order) sits at
        # ``pos = length - dist`` — no sequential walk needed.
        lane_tab = np.empty(A * n, dtype=idx_dt)
        lane_tab[cid_entry_f] = np.arange(C, dtype=idx_dt)
        cyc_sel = np.flatnonzero(onc_flat)
        cyc_lane = lane_tab.take(cid_flat.take(cyc_sel))
        cyc_dist = dist_flat.take(cyc_sel)
        cyc_pos = np.where(cyc_dist == 0, 0,
                           len_lane.take(cyc_lane) - cyc_dist)

        # Cycle *weight* sums: left-to-right accumulation in walk order
        # (the scalar association), one vectorized add per position.
        # Lanes sort by length (desc), so the lanes alive at position k
        # are a prefix and padding never touches the accumulator.
        lane_order = np.argsort(-len_lane, kind="stable")
        lane_rank = np.empty(C, dtype=np.int64)
        lane_rank[lane_order] = np.arange(C)
        walk_w = np.zeros((l_max, C))
        walk_w[cyc_pos, lane_rank.take(cyc_lane)] = wvn_flat.take(cyc_sel)
        hist = np.bincount(len_lane, minlength=l_max + 1)
        alive = C - np.cumsum(hist, dtype=np.int64)  # lanes with length > k
        acc = np.zeros(C)
        for k in range(l_max):
            a_k = int(alive[k])
            acc[:a_k] += walk_w[k, :a_k]
        cw = acc.take(lane_rank)
        lam_c = cw / ct

        # lambda of every node = its cycle's ratio: pure float copies
        # through a (row, cycle id) table, like the scalar propagation.
        lam_tab = np.zeros(A * n)
        lam_tab[cid_entry_f] = lam_c
        lam = lam_tab.take(cid_f)

        # Potentials: entry roots at 0, then peel outward one distance
        # level at a time — every node computes the scalar recurrence
        # ``(w - lam * t) + pot[next]`` with already-final operands.
        cvn = wvn - lam * tvn
        cvn_flat = cvn.ravel()
        pot = np.zeros((A, n))
        pot_flat = pot.ravel()
        if shared:
            # One policy: sort the n node distances once and peel whole
            # column blocks (every row shares the level structure).
            dist0 = dist_u.ravel()
            order0 = np.argsort(dist0, kind="stable")
            bounds0 = np.cumsum(np.bincount(dist0), dtype=np.int64)
            nxt0 = nxt_u.ravel()
            for d in range(1, len(bounds0)):
                sel0 = order0[bounds0[d - 1]: bounds0[d]]
                pot[:, sel0] = cvn[:, sel0] + pot[:, nxt0.take(sel0)]
        else:
            level_order = np.argsort(dist_flat, kind="stable")
            bounds = np.cumsum(np.bincount(dist_flat), dtype=np.int64)
            nxt_sorted = nxt_flat.take(level_order)
            cvn_sorted = cvn_flat.take(level_order)
            for d in range(1, len(bounds)):
                b0, b1 = bounds[d - 1], bounds[d]
                pot_flat[level_order[b0:b1]] = cvn_sorted[b0:b1] \
                    + pot_flat.take(nxt_sorted[b0:b1])

        # Best cycle per row: maximum lam, ties to the first *discovered*
        # cycle — the one with the smallest basin minimum, matching the
        # scalar walk's ascending-v0 discovery order and strict ``>``.
        # Lanes are row-major (np.nonzero), so per-row segment reductions
        # pick each row's winner without a sort; vmin is unique per cycle,
        # so the (lam, vmin) winner is unique.
        row_starts = np.searchsorted(lane_rows, arow)
        # vmin is keyed by (unique policy, cycle id), like the other
        # structural tables.
        vmin_lane = vmin_u.ravel().take(lane_u_key)
        seg_best = np.maximum.reduceat(lam_c, row_starts)
        is_max = lam_c == seg_best.take(lane_rows)
        seg_vmin = np.minimum.reduceat(np.where(is_max, vmin_lane, n), row_starts)
        win = is_max & (vmin_lane == seg_vmin.take(lane_rows))
        best_lane = np.minimum.reduceat(
            np.where(win, np.arange(C), C), row_starts
        )
        best_val = lam_c.take(best_lane)

        # ---- policy improvement (scalar expressions, broadcast) ---------
        tolA = tol_act[:, None]
        lam_src = lam[:, src]
        gain_lam = lam[:, dst] - lam_src
        reduced = W_act - lam_src * tokens + pot[:, dst] - pot[:, src]
        tie = gain_lam > -tolA
        r_masked = np.where(tie, reduced, -np.inf)

        if pad_idx is not None:
            # Dense per-node maxima over the padded slot axis, one slot
            # column at a time with a running (max, first-slot) pair —
            # a slot only wins on a strictly larger value, which is the
            # scalar "first CSR position attaining the segment max"
            # tie-breaking (and what np.argmax would pick).
            def _seg_first_max(
                vals_ext: npt.NDArray[np.float64],
            ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.int64]]:
                cols = vals_ext[:, pad_idx].reshape(A, n, dmax)
                best = cols[:, :, 0]
                slot = np.zeros((A, n), dtype=np.int64)
                for j in range(1, dmax):
                    col = cols[:, :, j]
                    better = col > best
                    best = np.where(better, col, best)
                    slot = np.where(better, j, slot)
                return best, seg_starts + slot

            ext = np.empty((A, e + 1))
            ext[:, e] = -np.inf
            ext[:, :e] = gain_lam
            seg_max_g, first_g = _seg_first_max(ext)
            ext2 = np.empty((A, e + 1))
            ext2[:, e] = -np.inf
            ext2[:, :e] = r_masked
            seg_max_r, first_r = _seg_first_max(ext2)
        else:
            seg_max_g = np.maximum.reduceat(gain_lam, seg_starts, axis=1)
            first_g = np.minimum.reduceat(
                np.where(gain_lam == seg_max_g[:, src], edge_pos, e),
                seg_starts, axis=1)
            seg_max_r = np.maximum.reduceat(r_masked, seg_starts, axis=1)
            first_r = np.minimum.reduceat(
                np.where(tie & (r_masked == seg_max_r[:, src]), edge_pos, e),
                seg_starts, axis=1)
        phase1 = seg_max_g > tolA
        phase2 = ~phase1 & (seg_max_r > tolA) & (first_r != policy)

        done = ~(phase1 | phase2).any(axis=1)
        if done.any():
            # Converged rows: record this round's evaluation (the scalar
            # early return) and retire them from the lockstep.
            d_idx = np.flatnonzero(done)
            D = d_idx.size
            best_lane_d = best_lane.take(d_idx)
            vals_d = best_val.take(d_idx)
            out_policy[rows.take(d_idx)] = policy[d_idx]
            if shared:
                # One shared policy: rows extracting the same entry share
                # the same cycle — walk each unique cycle once and hand
                # every row the same (immutable) node/edge tuples.
                ents = lane_entry.take(best_lane_d)
                uents, uinv = np.unique(ents, return_inverse=True)
                nxt0 = nxt_u.ravel()
                pol0 = uniq[0]
                shared_cycles = []
                for entv in uents.tolist():
                    cyc = [entv]
                    v = int(nxt0[entv])
                    while v != entv:
                        cyc.append(v)
                        v = int(nxt0[v])
                    arr = np.asarray(cyc, dtype=np.int64)
                    shared_cycles.append((
                        tuple(node_map_arr.take(arr).tolist()),
                        tuple(edge_gmap.take(pol0.take(arr)).tolist()),
                    ))
                for t in range(D):
                    nodes_t, edges_t = shared_cycles[uinv[t]]
                    results[int(rows[d_idx[t]])] = (
                        float(vals_d[t]), nodes_t, edges_t, round_no
                    )
            else:
                # Best cycles are already laid out in walk order
                # (cyc_pos), so extraction is two scatters plus bulk id
                # mapping — the per-row cost is a list slice.
                lengths = len_lane.take(best_lane_d)
                l_ext = int(lengths.max())
                # Offset table keyed by lane: only the winning lanes of
                # the done rows get a slot in the (D, l_ext) matrices.
                off_tab = np.full(C, -1, dtype=np.int64)
                off_tab[best_lane_d] = np.arange(D) * l_ext
                slot = off_tab.take(cyc_lane)
                picked = slot >= 0
                slots = slot[picked] + cyc_pos[picked]
                sel = cyc_sel[picked]
                nodes_mat = np.zeros(D * l_ext, dtype=np.int64)
                edges_mat = np.zeros(D * l_ext, dtype=np.int64)
                nodes_mat[slots] = sel % n
                edges_mat[slots] = policy.ravel().take(sel)
                nodes_l = node_map_arr.take(nodes_mat).reshape(D, l_ext).tolist()
                edges_l = edge_gmap.take(edges_mat).reshape(D, l_ext).tolist()
                for t in range(D):
                    length = int(lengths[t])
                    results[int(rows[d_idx[t]])] = (
                        float(vals_d[t]), nodes_l[t][:length],
                        edges_l[t][:length], round_no,
                    )
            if done.all():
                return results, out_policy  # type: ignore[return-value]

        policy = np.where(phase1, first_g, np.where(phase2, first_r, policy))
        if done.any():
            keep = ~done
            policy, rows = policy[keep], rows[keep]
            W_act, tol_act = W_act[keep], tol_act[keep]

    raise SolverError(
        f"Howard's algorithm did not converge within {max_rounds} rounds "
        f"for {rows.size} of {B} batch rows; the tolerance may be too "
        f"small for this weight scale"
    )


def solve_prepared(
    plan: HowardPlan,
    weight: npt.NDArray[np.float64],
    tol: float | None = None,
    state: HowardState | None = None,
) -> HowardResult:
    """Run policy iteration on a prepared plan with fresh edge weights.

    Parameters
    ----------
    plan:
        Structural preparation from :func:`prepare_howard`.
    weight:
        Edge weights aligned with the original graph's edge indices.
    tol:
        Improvement tolerance; defaults to ``1e-9`` times the weight scale.
    state:
        Optional warm-start carrier.  When given, each SCC's policy
        iteration starts from the policy the *previous* solve with this
        state converged to, and the converged policies are written back.
        A state binds to the plan of its first solve and raises
        :class:`SolverError` if reused with a different plan (the
        carried policies index that plan's CSR layout).  The returned
        ``value`` is the exact maximum cycle ratio regardless; on exact
        ties between distinct critical cycles the extracted cycle may
        differ from a cold start's.

    Raises
    ------
    SolverError
        If the graph is acyclic, policy iteration fails to converge, or
        ``state`` is bound to a different plan.
    """
    weight = np.asarray(weight, dtype=float)
    if tol is None:
        scale = float(np.abs(weight).max()) if plan.n_edges else 1.0
        tol = 1e-9 * max(scale, 1.0)

    if state is not None:
        _bind_state(state, plan)

    best: HowardResult | None = None
    rounds = 0
    for ci, comp in enumerate(plan.components):
        if isinstance(comp, _PreparedSingleton):
            ratios = [
                (float(weight[i]) / int(plan.tokens[i]), i)
                for i in comp.self_loops
                # 0-token self-loops were excluded by the liveness check
            ]
            val, eidx = max(ratios)
            cand = HowardResult(val, (comp.node,), (eidx,), 0)
        else:
            policy0 = state.policies[ci] if state is not None else None
            res, policy = _scc_howard_csr(
                comp, weight[comp.edge_map][comp.order], tol, policy0=policy0
            )
            if state is not None:
                state.policies[ci] = policy
            cand = HowardResult(
                value=res.value,
                cycle_nodes=tuple(comp.node_map[v] for v in res.cycle_nodes),
                cycle_edges=tuple(int(comp.edge_map[i]) for i in res.cycle_edges),
                n_rounds=res.n_rounds,
            )
        rounds += cand.n_rounds
        if best is None or cand.value > best.value:
            best = cand

    if best is None:
        raise SolverError("graph is acyclic: no cycle ratio exists")
    if TELEMETRY.enabled:
        TELEMETRY.count("howard.solves")
        TELEMETRY.count("howard.rounds", rounds)

    # Report the *exact* arithmetic ratio of the extracted cycle, which is
    # cleaner than the float accumulated during policy evaluation.
    idx = np.asarray(list(best.cycle_edges), dtype=np.int64)
    total_w = float(weight[idx].sum(dtype=np.float64))
    total_t = int(plan.tokens[idx].sum(dtype=np.int64))
    if total_t == 0:
        raise DeadlockError("cycle carries no token; its ratio is infinite")
    return HowardResult(total_w / total_t, best.cycle_nodes, best.cycle_edges, best.n_rounds)


def solve_prepared_many(
    plan: HowardPlan,
    weights: npt.NDArray[np.float64],
    tol: float | None = None,
    states: list[HowardState] | None = None,
    state: HowardState | None = None,
) -> list[HowardResult]:
    """Lockstep policy iteration for ``B`` weight stampings of one plan.

    Parameters
    ----------
    plan:
        Structural preparation from :func:`prepare_howard`.
    weights:
        ``(B, n_edges)`` matrix — one edge-weight stamping per row,
        aligned with the original graph's edge indices.
    tol:
        Improvement tolerance applied to every row; defaults to
        ``1e-9`` times each row's own weight scale (exactly the scalar
        per-solve default).
    states:
        Optional per-row warm-start carriers, one
        :class:`HowardState` per row: row ``b`` seeds from and writes
        back to ``states[b]`` exactly like ``solve_prepared(plan,
        weights[b], state=states[b])`` would.  Mutually exclusive with
        ``state``.  States are written only when the whole solve
        succeeds.
    state:
        Optional *shared* warm-start carrier: every row seeds from the
        state's current policies and the state afterwards carries the
        **last** row's converged policies (so a subsequent batch
        continues where this one left off).  Period values are
        identical to cold start either way; only round counts and
        exact-tie cycle extraction depend on the seeding.

    Returns
    -------
    list[HowardResult]
        One result per row.  Without warm starts (or with per-row
        ``states``), entry ``b`` is bit-identical to
        ``solve_prepared(plan, weights[b])`` — value bits, extracted
        cycle, and round count.

    Raises
    ------
    SolverError
        If the graph is acyclic, any row fails to converge, or a state
        is bound to a different plan.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2 or weights.shape[1] != plan.n_edges:
        raise ValueError(
            f"weights must have shape (B, {plan.n_edges}); "
            f"got {weights.shape}"
        )
    if states is not None and state is not None:
        raise ValueError("pass per-row states= or a shared state=, not both")
    B = weights.shape[0]
    if states is not None and len(states) != B:
        raise ValueError(
            f"got {B} weight rows but {len(states)} states; pass one "
            f"HowardState per row"
        )
    if B == 0:
        return []

    if tol is None:
        if plan.n_edges:
            scale = np.abs(weights).max(axis=1)
        else:
            scale = np.ones(B)
        tol_rows = 1e-9 * np.maximum(scale, 1.0)
    else:
        tol_rows = np.full(B, float(tol))

    if states is not None:
        for st in states:
            _bind_state(st, plan)
    if state is not None:
        _bind_state(state, plan)

    # Fast path for the common TPN shape — one multi-node SCC, nothing
    # else: no cross-component candidate merge to run, so per-row results
    # go straight to the exact-ratio recompute.
    if len(plan.components) == 1 and isinstance(plan.components[0], _PreparedScc):
        comp = plan.components[0]
        if states is not None:
            policy0 = [st.policies[0] for st in states]  # type: ignore[index]
        elif state is not None:
            policy0 = [state.policies[0]] * B  # type: ignore[index]
        else:
            policy0 = None
        gmap = comp.edge_map[comp.order]
        res_rows, out_pol = _scc_howard_csr_many(
            comp, weights[:, gmap], tol_rows, policy0,
            np.asarray(comp.node_map, dtype=np.int64), gmap,
        )
        out = _exact_ratio_results(plan, weights, [
            (val, tuple(nodes), tuple(edges), n_rounds)
            for val, nodes, edges, n_rounds in res_rows
        ])
        if states is not None:
            for b, st in enumerate(states):
                st.policies[0] = out_pol[b]  # type: ignore[index]
        elif state is not None:
            state.policies[0] = out_pol[B - 1]  # type: ignore[index]
        return _count_lockstep(out)

    best: list[HowardResult | None] = [None] * B
    pending_policies: list[tuple[int, npt.NDArray[np.int64]]] = []
    for ci, comp in enumerate(plan.components):
        if isinstance(comp, _PreparedSingleton):
            loops = np.asarray(comp.self_loops, dtype=np.int64)
            vals = weights[:, loops] / plan.tokens[loops]
            # Scalar uses max() over (ratio, edge) tuples: ties go to the
            # *largest* edge index -> last argmax occurrence.
            k = loops.size
            j = (k - 1) - np.argmax(vals[:, ::-1], axis=1)
            for b in range(B):
                val = float(vals[b, j[b]])
                cur = best[b]
                if cur is None or val > cur.value:
                    best[b] = HowardResult(
                        val, (comp.node,), (int(loops[j[b]]),), 0
                    )
            continue

        if states is not None:
            policy0 = [st.policies[ci] for st in states]  # type: ignore[index]
        elif state is not None:
            policy0 = [state.policies[ci]] * B  # type: ignore[index]
        else:
            policy0 = None
        gmap = comp.edge_map[comp.order]
        res_rows, out_pol = _scc_howard_csr_many(
            comp, weights[:, gmap], tol_rows, policy0,
            np.asarray(comp.node_map, dtype=np.int64), gmap,
        )
        pending_policies.append((ci, out_pol))
        for b in range(B):
            val, cyc_nodes, cyc_edges, n_rounds = res_rows[b]
            cur = best[b]
            if cur is None or val > cur.value:
                best[b] = HowardResult(
                    val, tuple(cyc_nodes), tuple(cyc_edges), n_rounds
                )

    if not plan.components:
        raise SolverError("graph is acyclic: no cycle ratio exists")

    rows = []
    for b in range(B):
        res = best[b]
        assert res is not None  # every component yields a candidate
        rows.append((res.value, res.cycle_nodes, res.cycle_edges, res.n_rounds))
    out = _exact_ratio_results(plan, weights, rows)

    # Write converged policies back only on full success, so a failed
    # batch leaves every carried state untouched.
    for ci, pol in pending_policies:
        if states is not None:
            for b, st in enumerate(states):
                st.policies[ci] = pol[b]  # type: ignore[index]
        elif state is not None:
            state.policies[ci] = pol[B - 1]  # type: ignore[index]
    return _count_lockstep(out)


def _count_lockstep(out: list[HowardResult]) -> list[HowardResult]:
    """Tally one successful lockstep solve on the telemetry counters."""
    if TELEMETRY.enabled:
        rounds = 0
        for res in out:
            rounds += res.n_rounds
        TELEMETRY.count("howard.lockstep_solves")
        TELEMETRY.count("howard.lockstep_rows", len(out))
        TELEMETRY.count("howard.rounds", rounds)
    return out


def _exact_ratio_results(
    plan: HowardPlan,
    weights: npt.NDArray[np.float64],
    rows: list[tuple[float, tuple[int, ...], tuple[int, ...], int]],
) -> list[HowardResult]:
    """Per-row exact extracted-cycle ratios, batched per unique cycle.

    Rows of one batch usually extract a handful of distinct cycles, so
    the gather+sum runs once per unique cycle; summing the ``(rows, L)``
    gather along its last axis applies numpy's pairwise reduction to
    each contiguous row — the same bits as the scalar
    ``weight[idx].sum()``.
    """
    groups: dict[tuple[int, ...], list[int]] = {}
    for b, (_, _, cyc_edges, _) in enumerate(rows):
        groups.setdefault(cyc_edges, []).append(b)
    values = np.empty(len(rows))
    for cyc, members in groups.items():
        idx = np.asarray(cyc, dtype=np.int64)
        total_t = int(plan.tokens[idx].sum(dtype=np.int64))
        if total_t == 0:
            raise DeadlockError("cycle carries no token; its ratio is infinite")
        values[members] = weights[np.ix_(np.asarray(members), idx)].sum(
            axis=1, dtype=np.float64) / total_t
    return [
        HowardResult(float(values[b]), nodes, edges, n_rounds)
        for b, (_, nodes, edges, n_rounds) in enumerate(rows)
    ]


def max_cycle_ratio_howard(graph: RatioGraph, tol: float | None = None) -> HowardResult:
    """Maximum cycle ratio and one critical cycle, over all SCCs.

    Parameters
    ----------
    graph:
        Token graph; must be live (every cycle carries a token) and contain
        at least one cycle.
    tol:
        Improvement tolerance; defaults to ``1e-9`` times the weight scale.

    Raises
    ------
    SolverError
        If the graph is acyclic or policy iteration fails to converge.
    DeadlockError
        If some cycle carries no token.
    """
    return solve_prepared(prepare_howard(graph), graph.weight, tol)
