"""Karp's algorithm for the maximum cycle *mean*.

Karp (1978): for a strongly connected digraph with ``n`` nodes and edge
weights ``w``, the maximum cycle mean (average weight per **edge**) is::

    lambda* = max_v min_{0 <= k < n, D_k(v) > -inf} (D_n(v) - D_k(v)) / (n - k)

where ``D_k(v)`` is the maximum weight of a walk of exactly ``k`` edges
from an arbitrary root to ``v``.

In TPN terms this solves the cycle-*ratio* problem only when every place
holds exactly one token (then tokens == edges along any cycle).  The
library uses it for max-plus matrix eigenvalues
(:mod:`repro.maxplus.recurrence`) and as an independent oracle in tests;
general nets go through Lawler's or Howard's algorithm.

The inner recurrence is vectorized: one ``np.maximum.at`` scatter per walk
length, i.e. ``O(n * e)`` with numpy constants.
"""

from __future__ import annotations

import numpy as np

from ..errors import SolverError
from .graph import RatioGraph

__all__ = ["max_cycle_mean", "max_cycle_mean_scc"]

_NEG_INF = -np.inf


def max_cycle_mean_scc(graph: RatioGraph) -> float:
    """Maximum cycle mean of one strongly connected graph.

    The graph must be strongly connected and contain at least one edge;
    use :func:`max_cycle_mean` for arbitrary graphs.
    """
    n = graph.n_nodes
    if n == 0 or graph.n_edges == 0:
        raise SolverError("max_cycle_mean_scc needs a non-empty graph")

    src, dst, w = graph.src, graph.dst, graph.weight
    # D[k, v] = best walk of exactly k edges from node 0 to v.
    D = np.full((n + 1, n), _NEG_INF)
    D[0, 0] = 0.0
    for k in range(n):
        nxt = np.full(n, _NEG_INF)
        cand = D[k, src] + w
        np.maximum.at(nxt, dst, cand)
        D[k + 1] = nxt

    finite_n = np.isfinite(D[n])
    if not np.any(finite_n):
        raise SolverError(
            "no walk of length n exists from the root; graph is not "
            "strongly connected"
        )
    best = _NEG_INF
    ks = np.arange(n)
    for v in np.flatnonzero(finite_n):
        dkv = D[:n, v]
        finite_k = np.isfinite(dkv)
        ratios = (D[n, v] - dkv[finite_k]) / (n - ks[finite_k])
        best = max(best, float(ratios.min()))
    return best


def max_cycle_mean(graph: RatioGraph) -> float:
    """Maximum cycle mean over all cycles of an arbitrary digraph.

    Decomposes into strongly connected components and applies Karp per
    component.  Raises :class:`~repro.errors.SolverError` when the graph is
    acyclic (no cycle exists, the mean is undefined).
    """
    best = _NEG_INF
    found = False
    for comp in graph.strongly_connected_components():
        if len(comp) == 1:
            v = comp[0]
            loops = [
                i for i in graph.out_edges(v) if int(graph.dst[i]) == v
            ]
            if loops:
                found = True
                best = max(best, float(graph.weight[loops].max()))
            continue
        sub, _, _ = graph.subgraph(comp)
        if sub.n_edges == 0:
            continue
        found = True
        best = max(best, max_cycle_mean_scc(sub))
    if not found:
        raise SolverError("graph is acyclic: no cycle mean exists")
    return best
