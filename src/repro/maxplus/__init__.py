"""Max-plus algebra and maximum-cycle-ratio solvers.

Three solver families compute ``lambda* = max_C sum(w)/sum(t)`` over the
cycles of a token graph (:class:`~repro.maxplus.graph.RatioGraph`):

* :mod:`~repro.maxplus.howard` — policy iteration, the default: exact
  value plus an explicit critical cycle.  Since PR 1 it is split into a
  structure-only :func:`~repro.maxplus.howard.prepare_howard` phase and
  a weight-only :func:`~repro.maxplus.howard.solve_prepared` phase, so
  batched sweeps sharing one topology reuse a single
  :class:`~repro.maxplus.howard.HowardPlan`; policy improvement is
  vectorized over CSR segments, and repeated solves can opt into warm
  starts via :class:`~repro.maxplus.howard.HowardState`.
* :mod:`~repro.maxplus.karp` / :mod:`~repro.maxplus.lawler` — cycle
  *mean* (all tokens 1) resp. binary-search bracketing; used as
  cross-checks and as the fallback when policy iteration stalls.
* :mod:`~repro.maxplus.algebra` / :mod:`~repro.maxplus.spectral` —
  dense max-plus matrix algebra, eigenvectors and the critical graph.

:func:`~repro.maxplus.cycle_ratio.max_cycle_ratio` is the uniform entry
point; :mod:`repro.engine` drives the prepare/solve split at scale.
"""

from .algebra import (
    NEG_INF,
    matrix_to_graph,
    mp_eigenvalue,
    mp_eye,
    mp_matmul,
    mp_matvec,
    mp_pow,
    mp_star,
    mp_zeros,
)
from .cycle_ratio import CycleRatioResult, max_cycle_ratio
from .graph import Edge, RatioGraph
from .howard import (
    HowardPlan,
    HowardResult,
    HowardState,
    max_cycle_ratio_howard,
    prepare_howard,
    solve_prepared,
)
from .karp import max_cycle_mean, max_cycle_mean_scc
from .lawler import has_positive_cycle, max_cycle_ratio_lawler
from .spectral import (
    CriticalGraph,
    critical_graph,
    cyclicity,
    mp_eigenvector,
    potentials,
)

__all__ = [
    "RatioGraph",
    "Edge",
    "CycleRatioResult",
    "max_cycle_ratio",
    "HowardResult",
    "HowardPlan",
    "HowardState",
    "prepare_howard",
    "solve_prepared",
    "max_cycle_ratio_howard",
    "max_cycle_mean",
    "max_cycle_mean_scc",
    "max_cycle_ratio_lawler",
    "has_positive_cycle",
    "CriticalGraph",
    "critical_graph",
    "cyclicity",
    "mp_eigenvector",
    "potentials",
    "NEG_INF",
    "mp_zeros",
    "mp_eye",
    "mp_matmul",
    "mp_matvec",
    "mp_pow",
    "mp_star",
    "matrix_to_graph",
    "mp_eigenvalue",
]
