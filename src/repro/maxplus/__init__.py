"""Max-plus algebra and maximum-cycle-ratio solvers."""

from .algebra import (
    NEG_INF,
    matrix_to_graph,
    mp_eigenvalue,
    mp_eye,
    mp_matmul,
    mp_matvec,
    mp_pow,
    mp_star,
    mp_zeros,
)
from .cycle_ratio import CycleRatioResult, max_cycle_ratio
from .graph import Edge, RatioGraph
from .howard import (
    HowardPlan,
    HowardResult,
    max_cycle_ratio_howard,
    prepare_howard,
    solve_prepared,
)
from .karp import max_cycle_mean, max_cycle_mean_scc
from .lawler import has_positive_cycle, max_cycle_ratio_lawler
from .spectral import (
    CriticalGraph,
    critical_graph,
    cyclicity,
    mp_eigenvector,
    potentials,
)

__all__ = [
    "RatioGraph",
    "Edge",
    "CycleRatioResult",
    "max_cycle_ratio",
    "HowardResult",
    "HowardPlan",
    "prepare_howard",
    "solve_prepared",
    "max_cycle_ratio_howard",
    "max_cycle_mean",
    "max_cycle_mean_scc",
    "max_cycle_ratio_lawler",
    "has_positive_cycle",
    "CriticalGraph",
    "critical_graph",
    "cyclicity",
    "mp_eigenvector",
    "potentials",
    "NEG_INF",
    "mp_zeros",
    "mp_eye",
    "mp_matmul",
    "mp_matvec",
    "mp_pow",
    "mp_star",
    "matrix_to_graph",
    "mp_eigenvalue",
]
