"""Spectral theory of token graphs: critical graph, potentials, cyclicity.

Beyond the critical *value* ``lambda*`` (the period), max-plus spectral
theory describes the steady-state *structure*:

* **potentials** ``h`` — a vector with
  ``h(src) + w(e) - lambda * t(e) <= h(dst)`` for every edge; they exist
  exactly when no cycle beats ``lambda`` and are the max-plus analogue of
  dual variables;
* the **critical graph** — the union of all cycles attaining
  ``lambda*``; its edges are the *tight* ones
  (``h(src) + w - lambda t = h(dst)``).  Resources on critical cycles are
  the ones that pace the system (Figure 8 draws one such cycle; this
  module finds them all);
* the **cyclicity** — the gcd of token counts over critical cycles (per
  critical component, lcm across components): after the transient, daters
  satisfy ``x(k + q) = x(k) + q * lambda`` with ``q`` the cyclicity.  The
  oscillating per-row rates observed in Example B's simulation are a
  cyclicity-2 effect;
* the **eigenvector** of an irreducible max-plus matrix — steady-state
  firing offsets: ``A ⊗ v = lambda + v``.

Everything here is validated against the discrete-event simulator in the
test-suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..errors import SolverError
from .algebra import mp_matvec
from .graph import RatioGraph
from .howard import max_cycle_ratio_howard

__all__ = [
    "potentials",
    "CriticalGraph",
    "critical_graph",
    "cyclicity",
    "mp_eigenvector",
]


def potentials(graph: RatioGraph, lam: float, tol: float = 1e-9) -> npt.NDArray[np.float64]:
    """Longest-path potentials under reduced weights ``w - lam * t``.

    Computed by Bellman-Ford from a virtual super-source connected to all
    nodes with weight 0; finite because no cycle has positive reduced
    weight when ``lam >= lambda*``.

    Raises
    ------
    SolverError
        If ``lam`` is below the maximum cycle ratio (a positive reduced
        cycle exists and longest paths diverge).
    """
    n = graph.n_nodes
    if n == 0:
        return np.zeros(0)
    src, dst = graph.src, graph.dst
    rw = graph.weight - lam * graph.tokens
    scale = max(1.0, float(np.abs(graph.weight).max()) if graph.n_edges else 1.0)
    h = np.zeros(n)
    for _ in range(n):
        cand = np.full(n, -np.inf)
        np.maximum.at(cand, dst, h[src] + rw)
        new_h = np.maximum(h, cand)
        if np.allclose(new_h, h, rtol=0.0, atol=tol * scale * 1e-3):
            return new_h
        h = new_h
    # one more round: any further improvement proves a positive cycle
    cand = np.full(n, -np.inf)
    np.maximum.at(cand, dst, h[src] + rw)
    if np.any(cand > h + tol * scale):
        raise SolverError(
            f"lam = {lam} is below the maximum cycle ratio; potentials "
            f"do not exist"
        )
    return np.maximum(h, cand)


@dataclass(frozen=True)
class CriticalGraph:
    """The union of all cycles attaining the maximum cycle ratio.

    Attributes
    ----------
    value:
        The critical ratio ``lambda*``.
    edges:
        Indices (into the source graph) of critical edges.
    nodes:
        Nodes lying on at least one critical cycle.
    components:
        Critical strongly connected components (each contains at least
        one critical cycle), as tuples of node indices.
    """

    value: float
    edges: tuple[int, ...]
    nodes: tuple[int, ...]
    components: tuple[tuple[int, ...], ...]


def critical_graph(graph: RatioGraph, tol: float = 1e-9) -> CriticalGraph:
    """Compute the critical graph of a live token graph.

    Tight edges (zero reduced slack under optimal potentials) are pruned
    to those lying inside strongly connected components of the tight
    subgraph — exactly the edges on critical cycles.
    """
    res = max_cycle_ratio_howard(graph)
    lam = res.value
    h = potentials(graph, lam)
    scale = max(1.0, float(np.abs(graph.weight).max()))
    slack = h[graph.src] + (graph.weight - lam * graph.tokens) - h[graph.dst]
    tight = np.flatnonzero(slack >= -tol * scale)

    # SCCs of the tight subgraph.
    tight_graph = RatioGraph(
        graph.n_nodes,
        [
            (int(graph.src[e]), int(graph.dst[e]), float(graph.weight[e]),
             int(graph.tokens[e]))
            for e in tight
        ],
    )
    comp_of = {}
    comps = []
    for comp in tight_graph.strongly_connected_components():
        has_cycle = len(comp) > 1 or any(
            int(tight_graph.dst[i]) == comp[0]
            for i in tight_graph.out_edges(comp[0])
        )
        if has_cycle:
            comps.append(tuple(sorted(comp)))
            for v in comp:
                comp_of[v] = len(comps) - 1

    crit_edges = tuple(
        int(e)
        for e in tight
        if int(graph.src[e]) in comp_of
        and comp_of[int(graph.src[e])] == comp_of.get(int(graph.dst[e]), -1)
    )
    crit_nodes = tuple(sorted(comp_of))
    return CriticalGraph(
        value=lam, edges=crit_edges, nodes=crit_nodes,
        components=tuple(sorted(comps)),
    )


def cyclicity(graph: RatioGraph, crit: CriticalGraph | None = None) -> int:
    """Cyclicity of the critical graph.

    Per critical component: the gcd of token counts over its cycles
    (computed via a token-distance spanning tree — every edge closes a
    cycle of token value ``d(src) + t(e) - d(dst)``); overall the lcm
    across components.  After the transient, the dater sequence satisfies
    ``x(k + cyclicity) = x(k) + cyclicity * lambda`` exactly.
    """
    if crit is None:
        crit = critical_graph(graph)
    overall = 1
    edge_set = set(crit.edges)
    for comp in crit.components:
        comp_set = set(comp)
        # token-distance from an arbitrary root via BFS on critical edges
        root = comp[0]
        dist: dict[int, int] = {root: 0}
        frontier = [root]
        adj: dict[int, list[tuple[int, int]]] = {v: [] for v in comp}
        for e in crit.edges:
            s, d = int(graph.src[e]), int(graph.dst[e])
            if s in comp_set and d in comp_set:
                adj[s].append((d, int(graph.tokens[e])))
        while frontier:
            v = frontier.pop()
            for w, t in adj[v]:
                if w not in dist:
                    dist[w] = dist[v] + t
                    frontier.append(w)
        g = 0
        for e in crit.edges:
            s, d = int(graph.src[e]), int(graph.dst[e])
            if s in comp_set and d in comp_set and e in edge_set:
                g = math.gcd(g, dist[s] + int(graph.tokens[e]) - dist[d])
        overall = math.lcm(overall, max(g, 1))
    return overall


def mp_eigenvector(a: npt.NDArray[np.float64], tol: float = 1e-9) -> tuple[float, npt.NDArray[np.float64]]:
    """Eigenpair of an irreducible max-plus matrix: ``A ⊗ v = lam + v``.

    Classic construction (Baccelli et al., Thm 3.23): normalize
    ``A_lam = A - lam``; for any node ``j`` on a critical cycle, the
    ``j``-th column of the Kleene star ``A_lam*`` is an eigenvector
    (naive power iteration oscillates with the cyclicity, so the star
    construction is the right tool).  The eigenvalue comes from Karp's
    algorithm.

    Returns
    -------
    (lam, v):
        The eigenvalue and an eigenvector normalized to ``v[0] = 0``.

    Raises
    ------
    SolverError
        When the matrix is reducible (no finite eigenvector exists in
        general) — detected via strong connectivity of the support graph.
    """
    from .algebra import matrix_to_graph, mp_matmul

    a = np.asarray(a, dtype=float)
    n = a.shape[0]
    graph = matrix_to_graph(a)
    crit = critical_graph(graph)
    lam = crit.value

    a_lam = a - lam  # -inf entries stay -inf
    # Star converges: all cycles of a_lam have non-positive weight; the
    # zero-weight (critical) cycles make mp_star's fixpoint test fragile,
    # so square a bounded number of times (covers all paths < 2n).
    eye = np.where(np.eye(n, dtype=bool), 0.0, -np.inf)
    star = np.maximum(a_lam, eye)
    steps = max(1, int(np.ceil(np.log2(max(n, 2)))) + 1)
    for _ in range(steps):
        star = np.maximum(star, mp_matmul(star, star))
    # The ⊕-combination of the star columns of all critical nodes is the
    # most general eigenvector candidate; it is finite iff every node is
    # reachable from some critical node (true for irreducible matrices,
    # and for the TPN matrices where sources fold into downstream SCCs).
    with np.errstate(invalid="ignore"):
        v = star[:, list(crit.nodes)].max(axis=1)
    if not np.all(np.isfinite(v)):
        raise SolverError(
            "no finite eigenvector: some node is unreachable from every "
            "critical node (reducible matrix with slow upstream class)"
        )
    check = mp_matvec(a, v)
    if not np.allclose(check, lam + v, rtol=0.0,
                       atol=max(tol, 1e-9) * max(1.0, abs(lam))):
        raise SolverError(
            "star construction failed the eigen-equation check (reducible "
            "matrix whose upstream classes run faster than lambda)"
        )
    return lam, v - v[0]
