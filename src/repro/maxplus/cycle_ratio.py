"""Unified entry point for maximum cycle ratio computations.

Dispatches between the three solvers of this package and packages the
result uniformly.  ``method="auto"`` (default) runs Howard's policy
iteration — exact value plus an explicit critical cycle — and falls back
to Lawler's binary search if policy iteration fails to converge on a
pathological weight scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SolverError
from .graph import RatioGraph
from .howard import max_cycle_ratio_howard
from .karp import max_cycle_mean
from .lawler import max_cycle_ratio_lawler

__all__ = ["CycleRatioResult", "max_cycle_ratio"]


@dataclass(frozen=True)
class CycleRatioResult:
    """Result of a maximum cycle ratio computation.

    Attributes
    ----------
    value:
        ``lambda* = max_C sum(w)/sum(t)``.
    cycle_nodes, cycle_edges:
        One critical cycle when the solver produces it (Howard); empty
        tuples otherwise.
    method:
        Which solver produced the value.
    """

    value: float
    cycle_nodes: tuple[int, ...]
    cycle_edges: tuple[int, ...]
    method: str

    @property
    def has_cycle(self) -> bool:
        """Whether an explicit critical cycle is attached."""
        return len(self.cycle_edges) > 0


def max_cycle_ratio(graph: RatioGraph, method: str = "auto") -> CycleRatioResult:
    """Maximum cycle ratio of a token graph.

    Parameters
    ----------
    graph:
        The weighted token graph (see :class:`~repro.maxplus.graph.RatioGraph`).
    method:
        ``"auto"`` — Howard with Lawler fallback (default);
        ``"howard"`` — policy iteration only;
        ``"lawler"`` — binary search only (no cycle extraction);
        ``"karp"`` — Karp's cycle mean; **requires every edge to carry
        exactly one token** and raises otherwise.

    Examples
    --------
    >>> g = RatioGraph(2, [(0, 1, 3.0, 1), (1, 0, 5.0, 1), (0, 0, 7.0, 1)])
    >>> max_cycle_ratio(g).value
    7.0
    """
    if method not in ("auto", "howard", "lawler", "karp"):
        raise ValueError(f"unknown method {method!r}")

    if method == "karp":
        if graph.n_edges == 0 or not np.all(graph.tokens == 1):
            raise SolverError(
                "Karp's algorithm computes the cycle *mean*: every edge "
                "must carry exactly one token"
            )
        return CycleRatioResult(max_cycle_mean(graph), (), (), "karp")

    if method == "lawler":
        return CycleRatioResult(max_cycle_ratio_lawler(graph), (), (), "lawler")

    try:
        res = max_cycle_ratio_howard(graph)
        return CycleRatioResult(res.value, res.cycle_nodes, res.cycle_edges, "howard")
    except SolverError:
        if method == "howard":
            raise
        return CycleRatioResult(max_cycle_ratio_lawler(graph), (), (), "lawler")
