"""Weighted token graphs — the cycle-ratio problem's data structure.

A :class:`RatioGraph` is a directed multigraph whose edge ``e`` carries a
real *weight* ``w(e)`` (total firing duration in TPN applications) and an
integer *token count* ``t(e) >= 0``.  The **maximum cycle ratio** is::

    lambda* = max over cycles C of  (sum of w over C) / (sum of t over C)

For timed event graphs this is exactly the steady-state inter-firing time
of the transitions on a critical cycle (Baccelli, Cohen, Olsder, Quadrat,
"Synchronization and Linearity", 1992), the quantity Section 4 of the paper
extracts from its timed Petri nets.

The class stores edges in flat arrays (struct-of-arrays layout) so the
solvers can iterate with numpy-friendly access patterns.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..errors import DeadlockError, ValidationError

__all__ = ["Edge", "RatioGraph"]


class Edge:
    """Read-only view of one edge of a :class:`RatioGraph`."""

    __slots__ = ("index", "src", "dst", "weight", "tokens")

    def __init__(
        self, index: int, src: int, dst: int, weight: float, tokens: int
    ) -> None:
        self.index = index
        self.src = src
        self.dst = dst
        self.weight = weight
        self.tokens = tokens

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Edge(#{self.index} {self.src}->{self.dst} "
            f"w={self.weight} t={self.tokens})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return (self.index, self.src, self.dst, self.weight, self.tokens) == (
            other.index,
            other.src,
            other.dst,
            other.weight,
            other.tokens,
        )

    def __hash__(self) -> int:
        return hash((self.index, self.src, self.dst, self.weight, self.tokens))


class RatioGraph:
    """Directed multigraph with edge weights and token counts.

    Parameters
    ----------
    n_nodes:
        Number of nodes, indexed ``0 .. n_nodes - 1``.
    edges:
        Iterable of ``(src, dst, weight, tokens)`` tuples.  Parallel edges
        and self-loops are allowed (self-loops model round-robin circuits
        of non-replicated resources).
    """

    __slots__ = ("n_nodes", "src", "dst", "weight", "tokens", "_out_adj", "_in_adj")

    def __init__(
        self,
        n_nodes: int,
        edges: Iterable[tuple[int, int, float, int]] = (),
    ) -> None:
        if n_nodes < 0:
            raise ValidationError("n_nodes must be >= 0")
        self.n_nodes = int(n_nodes)
        srcs: list[int] = []
        dsts: list[int] = []
        weights: list[float] = []
        tokens: list[int] = []
        for s, d, w, t in edges:
            s, d, t = int(s), int(d), int(t)
            if not (0 <= s < self.n_nodes and 0 <= d < self.n_nodes):
                raise ValidationError(
                    f"edge ({s}, {d}) out of range for {self.n_nodes} nodes"
                )
            if t < 0:
                raise ValidationError(f"edge ({s}, {d}) has negative tokens {t}")
            w = float(w)
            if not np.isfinite(w):
                raise ValidationError(f"edge ({s}, {d}) has non-finite weight {w}")
            srcs.append(s)
            dsts.append(d)
            weights.append(w)
            tokens.append(t)
        self.src = np.asarray(srcs, dtype=np.int64)
        self.dst = np.asarray(dsts, dtype=np.int64)
        self.weight = np.asarray(weights, dtype=float)
        self.tokens = np.asarray(tokens, dtype=np.int64)
        self._out_adj: list[list[int]] | None = None
        self._in_adj: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return int(self.src.size)

    def edge(self, i: int) -> Edge:
        """Edge ``i`` as a lightweight view object."""
        return Edge(i, int(self.src[i]), int(self.dst[i]), float(self.weight[i]), int(self.tokens[i]))

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        for i in range(self.n_edges):
            yield self.edge(i)

    def out_edges(self, node: int) -> list[int]:
        """Indices of edges leaving ``node``."""
        return self._out_adjacency()[node]

    def in_edges(self, node: int) -> list[int]:
        """Indices of edges entering ``node``."""
        if self._in_adj is None:
            adj: list[list[int]] = [[] for _ in range(self.n_nodes)]
            for i in range(self.n_edges):
                adj[int(self.dst[i])].append(i)
            self._in_adj = adj
        return self._in_adj[node]

    def _out_adjacency(self) -> list[list[int]]:
        if self._out_adj is None:
            adj: list[list[int]] = [[] for _ in range(self.n_nodes)]
            for i in range(self.n_edges):
                adj[int(self.src[i])].append(i)
            self._out_adj = adj
        return self._out_adj

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def strongly_connected_components(self) -> list[list[int]]:
        """Strongly connected components (iterative Tarjan).

        Returned in reverse topological order (Tarjan's natural output);
        singleton components without self-loops contain no cycles.
        """
        n = self.n_nodes
        adj = self._out_adjacency()
        index = np.full(n, -1, dtype=np.int64)
        low = np.zeros(n, dtype=np.int64)
        on_stack = np.zeros(n, dtype=bool)
        stack: list[int] = []
        components: list[list[int]] = []
        counter = 0

        for root in range(n):
            if index[root] != -1:
                continue
            # Explicit DFS stack of (node, iterator position over out-edges).
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                node, ei = work[-1]
                if ei == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack[node] = True
                advanced = False
                out = adj[node]
                while ei < len(out):
                    nxt = int(self.dst[out[ei]])
                    ei += 1
                    if index[nxt] == -1:
                        work[-1] = (node, ei)
                        work.append((nxt, 0))
                        advanced = True
                        break
                    if on_stack[nxt]:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if low[node] == index[node]:
                    comp: list[int] = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        comp.append(w)
                        if w == node:
                            break
                    components.append(comp)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return components

    def token_free_topological_order(self) -> list[int]:
        """Topological order of nodes in the 0-token edge subgraph.

        Raises
        ------
        DeadlockError
            If the 0-token subgraph contains a cycle — such a cycle has
            ratio ``+inf`` (it can never fire in the TPN reading).
        """
        n = self.n_nodes
        indeg = np.zeros(n, dtype=np.int64)
        adj: list[list[int]] = [[] for _ in range(n)]
        for i in range(self.n_edges):
            if self.tokens[i] == 0:
                s, d = int(self.src[i]), int(self.dst[i])
                if s == d:
                    raise DeadlockError(
                        f"node {s} has a token-free self-loop; the graph is not live"
                    )
                adj[s].append(d)
                indeg[d] += 1
        order = [int(v) for v in np.flatnonzero(indeg == 0)]
        head = 0
        while head < len(order):
            v = order[head]
            head += 1
            for w in adj[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    order.append(w)
        if len(order) != n:
            raise DeadlockError(
                "the 0-token subgraph contains a cycle; the graph is not live "
                "(some cycle carries no token)"
            )
        return order

    def is_live(self) -> bool:
        """``True`` when every cycle carries at least one token."""
        try:
            self.token_free_topological_order()
        except DeadlockError:
            return False
        return True

    def subgraph(self, nodes: Sequence[int]) -> tuple["RatioGraph", list[int], list[int]]:
        """Induced subgraph on ``nodes``.

        Returns ``(sub, node_map, edge_map)`` where ``node_map[i]`` is the
        original index of sub-node ``i`` and ``edge_map[j]`` the original
        index of sub-edge ``j``.
        """
        node_list = [int(v) for v in nodes]
        remap = {v: i for i, v in enumerate(node_list)}
        edge_map: list[int] = []
        edges: list[tuple[int, int, float, int]] = []
        for i in range(self.n_edges):
            s, d = int(self.src[i]), int(self.dst[i])
            if s in remap and d in remap:
                edges.append((remap[s], remap[d], float(self.weight[i]), int(self.tokens[i])))
                edge_map.append(i)
        return RatioGraph(len(node_list), edges), node_list, edge_map

    def cycle_ratio_of(self, edge_indices: Sequence[int]) -> float:
        """Exact ratio ``sum(w)/sum(t)`` of a given cycle (list of edges)."""
        idx = np.asarray(list(edge_indices), dtype=np.int64)
        total_w = float(self.weight[idx].sum(dtype=np.float64))
        total_t = int(self.tokens[idx].sum(dtype=np.int64))
        if total_t == 0:
            raise DeadlockError("cycle carries no token; its ratio is infinite")
        return total_w / total_t

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RatioGraph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"
