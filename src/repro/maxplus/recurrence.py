"""Max-plus matrix form of a timed event graph.

A net with tokens in {0, 1} obeys the implicit dater recursion
``x(k) = A0 ⊗ x(k) ⊕ A1 ⊗ x(k-1)`` where ``A0`` collects token-free
places and ``A1`` token places (entries ``duration(dst)`` positioned at
``[dst, src]``).  Because the 0-token support is acyclic, ``A0*`` is
finite and the system becomes explicit::

    x(k) = (A0* ⊗ A1) ⊗ x(k - 1)

whose max-plus eigenvalue is the net's critical cycle ratio — a third,
matrix-algebraic route to the period, used as an oracle against Howard /
Lawler / simulation on small nets (matrix work is O(T³) per product, so
keep ``T = m (2n-1)`` modest).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from ..errors import ValidationError
from ..petri.net import TimedEventGraph
from .algebra import matrix_to_graph, mp_matmul, mp_matvec, mp_star, mp_zeros
from .karp import max_cycle_mean

__all__ = ["tpn_matrices", "tpn_transition_matrix", "period_by_matrix", "iterate_daters"]


def tpn_matrices(net: TimedEventGraph) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
    """The implicit-form matrices ``(A0, A1)`` of a net.

    ``A0[d, s] = duration(d)`` for each 0-token place ``s -> d`` and
    likewise ``A1`` for 1-token places.  Nets with places holding 2+
    tokens are rejected (the workflow nets of this library never produce
    them; they would need a longer state vector).
    """
    n = net.n_transitions
    a0, a1 = mp_zeros((n, n)), mp_zeros((n, n))
    durations = np.array([t.duration for t in net.transitions])
    for p in net.places:
        if p.tokens == 0:
            a0[p.dst, p.src] = max(a0[p.dst, p.src], durations[p.dst])
        elif p.tokens == 1:
            a1[p.dst, p.src] = max(a1[p.dst, p.src], durations[p.dst])
        else:
            raise ValidationError(
                f"place {p.index} holds {p.tokens} tokens; the matrix form "
                f"implemented here supports tokens in {{0, 1}}"
            )
    return a0, a1


def tpn_transition_matrix(net: TimedEventGraph) -> npt.NDArray[np.float64]:
    """The explicit one-step matrix ``A = A0* ⊗ A1``."""
    a0, a1 = tpn_matrices(net)
    return mp_matmul(mp_star(a0), a1)


def period_by_matrix(net: TimedEventGraph) -> float:
    """Per-data-set period via the max-plus eigenvalue of ``A0* ⊗ A1``.

    Equals ``compute_period(...).period`` for the same net — by a fully
    independent algebraic route (Kleene star + Karp's cycle mean).
    """
    a = tpn_transition_matrix(net)
    return max_cycle_mean(matrix_to_graph(a)) / net.n_rows


def iterate_daters(net: TimedEventGraph, n_steps: int) -> npt.NDArray[np.float64]:
    """Iterate ``x(k) = A ⊗ x(k-1)`` from ``x(0) = 0``.

    Returns the ``(n_steps + 1, T)`` dater trajectory.  Asymptotically the
    increments follow the eigenvalue; the discrete-event simulator
    (:mod:`repro.simulation.event_sim`) matches these daters exactly
    because both implement the same earliest-firing semantics.
    """
    a = tpn_transition_matrix(net)
    x = np.zeros(net.n_transitions)
    out = [x.copy()]
    for _ in range(n_steps):
        x = mp_matvec(a, x)
        out.append(x.copy())
    return np.asarray(out)
