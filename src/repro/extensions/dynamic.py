"""Dynamic platforms (extension — the paper's stated future work).

Section 6 closes with: *"This paper was focused on static platforms,
opening the way to future work on finding good schedules on dynamic
platforms, whose speeds and bandwidths are modeled by random variables."*

This module provides that experimental substrate: processor speeds and
link bandwidths fluctuate across *epochs* (multiplicative noise around
the nominal platform), and the achieved throughput is measured per epoch
with the exact static solver — a quasi-static approximation appropriate
when epochs are long relative to the period.  Monte-Carlo aggregation
yields the throughput distribution of a mapping under platform
variability, enabling robustness comparisons between mappings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..core.models import CommModel
from ..core.platform import Platform
from ..core.throughput import compute_period

__all__ = ["DynamicPlatformModel", "ThroughputDistribution", "simulate_dynamic"]


@dataclass(frozen=True)
class DynamicPlatformModel:
    """Multiplicative-noise model of a fluctuating platform.

    Each epoch draws independent factors for every processor speed and
    link bandwidth:

    * ``"uniform"`` — factor ~ U[1 - spread, 1 + spread];
    * ``"lognormal"`` — factor = exp(N(0, sigma)) with
      ``sigma = spread`` (heavier right tail, never non-positive).

    Attributes
    ----------
    speed_spread, bandwidth_spread:
        Variability amplitudes (0 disables the corresponding noise).
    law:
        ``"uniform"`` or ``"lognormal"``.
    """

    speed_spread: float = 0.2
    bandwidth_spread: float = 0.2
    law: str = "uniform"

    def __post_init__(self) -> None:
        if self.law not in ("uniform", "lognormal"):
            raise ValueError(f"unknown law {self.law!r}")
        if not (0 <= self.speed_spread < 1 and 0 <= self.bandwidth_spread < 1):
            if self.law == "uniform":
                raise ValueError("uniform spreads must be in [0, 1)")

    def _factors(self, shape, spread: float, rng: np.random.Generator) -> np.ndarray:
        if spread == 0:
            return np.ones(shape)
        if self.law == "uniform":
            return rng.uniform(1.0 - spread, 1.0 + spread, shape)
        return np.exp(rng.normal(0.0, spread, shape))

    def perturb(self, plat: Platform, rng: np.random.Generator) -> Platform:
        """One epoch's platform: nominal values times fresh noise."""
        speeds = plat.speeds * self._factors(plat.n_processors, self.speed_spread, rng)
        bw = plat.bandwidths * self._factors(plat.bandwidths.shape,
                                             self.bandwidth_spread, rng)
        # keep the (ignored) diagonal well-formed
        bw = bw.copy()
        np.fill_diagonal(bw, 0.0)
        return Platform(speeds, bw, name=f"{plat.name}-epoch")


@dataclass(frozen=True)
class ThroughputDistribution:
    """Monte-Carlo throughput statistics of a mapping on a dynamic platform.

    Attributes
    ----------
    periods:
        Per-epoch exact periods.
    nominal_period:
        Period on the unperturbed platform.
    """

    periods: np.ndarray
    nominal_period: float

    @property
    def mean_period(self) -> float:
        """Average per-epoch period."""
        return float(self.periods.mean())

    @property
    def mean_throughput(self) -> float:
        """Average per-epoch throughput (data sets / time)."""
        return float((1.0 / self.periods).mean())

    def quantile(self, q: float) -> float:
        """Period quantile (e.g. ``q=0.95`` for tail degradation)."""
        return float(np.quantile(self.periods, q))

    @property
    def degradation(self) -> float:
        """``mean_period / nominal_period - 1`` — robustness figure."""
        return self.mean_period / self.nominal_period - 1.0


def simulate_dynamic(
    inst: Instance,
    model: CommModel | str,
    dynamics: DynamicPlatformModel,
    n_epochs: int = 100,
    seed: int = 0,
    max_rows: int = 20_000,
) -> ThroughputDistribution:
    """Monte-Carlo throughput of a mapping under platform fluctuation.

    Each epoch perturbs the platform, recomputes the *exact* period for
    the same mapping, and records it.  Deterministic given ``seed``.
    """
    model = CommModel.parse(model)
    rng = np.random.default_rng(seed)
    nominal = compute_period(inst, model, max_rows=max_rows).period
    periods = np.empty(n_epochs)
    for e in range(n_epochs):
        plat = dynamics.perturb(inst.platform, rng)
        epoch_inst = Instance(inst.application, plat, inst.mapping)
        periods[e] = compute_period(epoch_inst, model, max_rows=max_rows).period
    periods.setflags(write=False)
    return ThroughputDistribution(periods=periods, nominal_period=nominal)
