"""Mapping search heuristics (extension — the NP-hard problem of [3]).

Given an application and a platform, *choose* the replicated mapping that
minimizes the period.  The decision problem is NP-hard even without
replication (Benoit & Robert, JPDC 2008, reference [3] of the paper), so
this module offers baselines rather than exact optimization:

* :func:`random_mapping` — uniform random replication/assignment
  (the generator used for Table 2);
* :func:`greedy_mapping` — allocate processors one at a time to the stage
  whose current contribution to the period is worst;
* :func:`local_search_mapping` — hill-climbing over swap/move/reorder
  neighborhoods, scored by the exact period oracle.

All heuristics use the exact period as a black-box objective,
demonstrating the intended downstream use of the library's evaluator.
Candidate evaluation runs through a shared
:class:`~repro.engine.batch.BatchEngine` (pass your own via ``engine=``
to share its topology cache across searches): re-proposed mappings hit
the skeleton cache instead of rebuilding their TPN, and
:func:`local_search_mapping` can fan a whole neighborhood out to worker
processes with ``n_jobs`` while preserving the serial search trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.application import Application
from ..core.instance import Instance
from ..core.mapping import Mapping
from ..core.models import CommModel
from ..core.platform import Platform
from ..engine import BatchEngine, evaluate_batch
from ..errors import ValidationError
from ..experiments.generator import random_replication

__all__ = [
    "MappingSearchResult",
    "random_mapping",
    "greedy_mapping",
    "local_search_mapping",
]


@dataclass(frozen=True)
class MappingSearchResult:
    """Outcome of a mapping search.

    Attributes
    ----------
    mapping:
        Best mapping found.
    period:
        Its exact period.
    evaluations:
        Number of period-oracle calls spent.
    trace:
        Periods of successive accepted solutions (monotone for the
        hill-climbers; useful for convergence plots).
    """

    mapping: Mapping
    period: float
    evaluations: int
    trace: tuple[float, ...]


def _evaluate(
    app: Application,
    plat: Platform,
    mapping: Mapping,
    model: CommModel,
    max_paths: int,
    engine: BatchEngine,
) -> float:
    if mapping.num_paths > max_paths:
        return float("inf")
    inst = Instance(app, plat, mapping)
    return engine.evaluate(inst, model).period


def _search_engine(engine: BatchEngine | None, max_paths: int) -> BatchEngine:
    """The caller's engine, or a fresh one budgeted like the scalar path."""
    return engine if engine is not None else BatchEngine(max_rows=max_paths + 1)


def random_mapping(
    app: Application,
    plat: Platform,
    rng: np.random.Generator,
    max_paths: int = 3000,
) -> Mapping:
    """Uniform random replicated mapping (at least one replica per stage)."""
    n, p = app.n_stages, plat.n_processors
    counts = random_replication(n, p, rng, max_paths=max_paths)
    perm = rng.permutation(p)
    bounds = np.cumsum((0,) + counts)
    return Mapping(
        [tuple(int(x) for x in perm[bounds[i]: bounds[i + 1]]) for i in range(n)],
        n_processors=p,
    )


def greedy_mapping(
    app: Application,
    plat: Platform,
    model: CommModel | str = "overlap",
    max_paths: int = 3000,
    engine: BatchEngine | None = None,
) -> MappingSearchResult:
    """Greedy constructive heuristic.

    Starts from the period-minimizing one-to-one mapping of each stage to
    the fastest unused processor, then repeatedly grants one extra replica
    to the stage whose computation column currently dominates the period,
    choosing the fastest remaining processor — stopping when no grant
    improves the exact period (or processors run out).
    """
    model = CommModel.parse(model)
    eng = _search_engine(engine, max_paths)
    n, p = app.n_stages, plat.n_processors
    if p < n:
        raise ValidationError("need at least one processor per stage")
    # Fastest processors first; seed assignment round-robins the best n.
    speed_order = list(np.argsort(-plat.speeds, kind="stable"))
    assign: list[list[int]] = [[int(speed_order[i])] for i in range(n)]
    free = [int(u) for u in speed_order[n:]]

    evaluations = 0

    def period_of(a: list[list[int]]) -> float:
        nonlocal evaluations
        evaluations += 1
        return _evaluate(app, plat, Mapping([tuple(s) for s in a]), model, max_paths, eng)

    best = period_of(assign)
    trace = [best]
    while free:
        candidate_best: tuple[float, int] | None = None
        u = free[0]
        for stage in range(n):
            trial = [list(s) for s in assign]
            trial[stage].append(u)
            val = period_of(trial)
            if candidate_best is None or val < candidate_best[0]:
                candidate_best = (val, stage)
        if candidate_best is None or candidate_best[0] >= best:
            break
        best = candidate_best[0]
        assign[candidate_best[1]].append(u)
        free.pop(0)
        trace.append(best)
    return MappingSearchResult(
        mapping=Mapping([tuple(s) for s in assign]),
        period=best,
        evaluations=evaluations,
        trace=tuple(trace),
    )


def local_search_mapping(
    app: Application,
    plat: Platform,
    model: CommModel | str = "overlap",
    rng: np.random.Generator | None = None,
    start: Mapping | None = None,
    max_iters: int = 200,
    max_paths: int = 3000,
    engine: BatchEngine | None = None,
    n_jobs: int | None = None,
) -> MappingSearchResult:
    """First-improvement hill climbing over mapping neighborhoods.

    Moves: (a) swap two processors between stages, (b) move a spare or
    replicated processor to another stage, (c) rotate a stage's replica
    order (changes round-robin phase, which matters for comm pairing).

    With ``n_jobs`` set (0 = all cores, k > 1 = k workers) every
    iteration evaluates its whole candidate neighborhood through
    :func:`repro.engine.evaluate_batch` and *then* scans it in the same
    shuffled order for the first improving move — the accepted-solution
    trajectory is identical to the serial search, only ``evaluations``
    grows (the serial path stops evaluating at the first improvement).
    Worker processes are pooled per iteration, so the shared ``engine``
    cache benefits the serial paths; sharded chunks warm their own
    per-worker caches.
    """
    model = CommModel.parse(model)
    eng = _search_engine(engine, max_paths)
    rng = rng if rng is not None else np.random.default_rng(0)
    mapping = start if start is not None else random_mapping(app, plat, rng, max_paths)

    evaluations = 0

    def period_of(m: Mapping) -> float:
        nonlocal evaluations
        evaluations += 1
        return _evaluate(app, plat, m, model, max_paths, eng)

    best = period_of(mapping)
    trace = [best]
    n = app.n_stages
    for _ in range(max_iters):
        improved = False
        assign = [list(s) for s in mapping.assignments]
        moves: list[list[list[int]]] = []
        # (a) swaps
        for i in range(n):
            for j in range(i + 1, n):
                for a in range(len(assign[i])):
                    for b in range(len(assign[j])):
                        trial = [list(s) for s in assign]
                        trial[i][a], trial[j][b] = trial[j][b], trial[i][a]
                        moves.append(trial)
        # (b) moves of a replica (only from stages with >= 2 replicas)
        for i in range(n):
            if len(assign[i]) < 2:
                continue
            for a in range(len(assign[i])):
                for j in range(n):
                    if j == i:
                        continue
                    trial = [list(s) for s in assign]
                    proc = trial[i].pop(a)
                    trial[j].append(proc)
                    moves.append(trial)
        # (c) rotations
        for i in range(n):
            if len(assign[i]) >= 2:
                trial = [list(s) for s in assign]
                trial[i] = trial[i][1:] + trial[i][:1]
                moves.append(trial)

        order = rng.permutation(len(moves))
        if n_jobs is not None and n_jobs != 1:
            # Batch path: evaluate the whole (valid) neighborhood at once,
            # then accept the first improving move in shuffled order — the
            # same move the serial scan would have accepted.
            candidates: list[tuple[int, Mapping]] = []
            for k in order:
                try:
                    m2 = Mapping([tuple(s) for s in moves[int(k)]],
                                 n_processors=plat.n_processors)
                except ValidationError:
                    continue
                candidates.append((int(k), m2))
            feasible = [(k, m2) for k, m2 in candidates
                        if m2.num_paths <= max_paths]
            insts = [Instance(app, plat, m2) for _, m2 in feasible]
            # `engine=eng` only reaches the serial fallback (small
            # neighborhoods); sharded evaluations use per-worker caches
            # that live for one evaluate_batch call.
            results = evaluate_batch(insts, model, max_rows=max_paths + 1,
                                     n_jobs=n_jobs, engine=eng)
            evaluations += len(candidates)
            values = {k: float("inf") for k, _ in candidates}
            values.update({k: r.period for (k, _), r in zip(feasible, results)})
            by_move = dict(candidates)
            for k, _ in candidates:
                if values[k] < best * (1 - 1e-12):
                    mapping, best = by_move[k], values[k]
                    trace.append(best)
                    improved = True
                    break
        else:
            for k in order:
                trial = moves[int(k)]
                try:
                    m2 = Mapping([tuple(s) for s in trial],
                                 n_processors=plat.n_processors)
                except ValidationError:
                    continue
                val = period_of(m2)
                if val < best * (1 - 1e-12):
                    mapping, best = m2, val
                    trace.append(best)
                    improved = True
                    break
        if not improved:
            break
    return MappingSearchResult(mapping=mapping, period=best,
                               evaluations=evaluations, trace=tuple(trace))
