"""Mapping search heuristics (extension — the NP-hard problem of [3]).

Given an application and a platform, *choose* the replicated mapping that
minimizes the period.  The decision problem is NP-hard even without
replication (Benoit & Robert, JPDC 2008, reference [3] of the paper), so
this module offers baselines rather than exact optimization:

* :func:`random_mapping` — uniform random replication/assignment
  (the generator used for Table 2);
* :func:`greedy_mapping` — allocate processors one at a time to the stage
  whose current contribution to the period is worst;
* :func:`local_search_mapping` — hill-climbing over swap/move/reorder
  neighborhoods, scored by the exact period oracle.

All heuristics use the exact period as a black-box objective,
demonstrating the intended downstream use of the library's evaluator.
Candidate evaluation runs through a shared
:class:`~repro.engine.batch.BatchEngine` (pass your own via ``engine=``
to share its topology cache across searches): re-proposed mappings hit
the skeleton cache instead of rebuilding their TPN, and
:func:`local_search_mapping` can fan a whole neighborhood out to worker
processes with ``n_jobs`` while preserving the serial search trajectory.
Small neighborhoods evaluate through the engine's ``mode="many"`` path,
which locksteps any same-topology runs among the candidates through the
batched Howard solver (see :func:`repro.maxplus.howard.solve_prepared_many`).

Restart hooks
-------------
:mod:`repro.search` composes these heuristics into a multi-start
portfolio.  Two hooks exist for that composition and for any caller with
a fixed oracle allowance:

* ``budget=`` — an :class:`repro.search.EvaluationBudget` (or any object
  with its ``take(n) -> int`` / ``refund(n)`` protocol) checked before
  every oracle call; when the shared pool runs dry the search stops
  gracefully and returns its incumbent instead of overdrawing.
* :func:`perturb_mapping` — a seeded kick of an elite mapping (random
  swap/move/rotate moves) used to diversify restarts around the current
  best solution.
* ``checkpoint=`` — resume a climb that a budget slice truncated.  When
  the pool dries mid-climb, :func:`local_search_mapping` returns a
  :class:`SearchCheckpoint` (incumbent mapping, RNG state, neighborhood
  scan cursor) on the result; passing it back resumes the climb exactly
  where it paused.  The **resume invariant**: a climb paused and resumed
  any number of times visits the same evaluations, accepts the same
  moves and reaches the same incumbent as one uninterrupted climb given
  the same total grant — racing allocators
  (:class:`repro.search.allocator.RacingAllocator`) rely on this to
  truncate restarts without losing their progress.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..core.application import Application
from ..core.instance import Instance
from ..core.mapping import Mapping
from ..core.models import CommModel
from ..core.platform import Platform
from ..engine import BatchEngine, evaluate
from ..engine.batch import MIN_PARALLEL_BATCH
from ..errors import ValidationError
from ..experiments.generator import random_replication

__all__ = [
    "MappingSearchResult",
    "SearchCheckpoint",
    "random_mapping",
    "greedy_mapping",
    "local_search_mapping",
    "perturb_mapping",
]


class _Budget(Protocol):
    """Structural type of the ``budget=`` hook (no import of repro.search)."""

    def take(self, n: int = 1) -> int: ...

    def refund(self, n: int) -> None: ...


class _BudgetExhausted(Exception):
    """Internal control flow: the shared evaluation pool ran dry."""


def _charge(budget: _Budget | None, n: int = 1) -> int:
    """Grant up to ``n`` evaluations from ``budget`` (all of them if None)."""
    if budget is None:
        return n
    granted = budget.take(n)
    if granted == 0 and n > 0:
        raise _BudgetExhausted
    return granted


@dataclass(frozen=True)
class SearchCheckpoint:
    """Resumable state of a budget-paused :func:`local_search_mapping`.

    Captures everything the climb needs to continue exactly where a
    truncated budget slice stopped it: the incumbent mapping, the RNG
    state (*after* the current neighborhood permutation was drawn), and
    the scan cursor into that shuffled neighborhood.  Passing the
    checkpoint back via ``local_search_mapping(checkpoint=...)`` resumes
    the climb bit-identically: the interrupted-and-resumed trajectory
    equals the uninterrupted one at equal total grants.

    Attributes
    ----------
    assignments:
        The climb's current mapping (incumbent once ``started``).
    period:
        Best period reached so far (``inf`` before the first
        evaluation completed).
    evaluations:
        Cumulative oracle calls across all grants of this climb.
    trace:
        Cumulative accepted-period trace across all grants.
    iteration:
        Completed improving iterations (counts against ``max_iters``).
    cursor:
        Next position to evaluate in the current neighborhood's
        shuffled candidate list.
    order:
        The current neighborhood's shuffled scan order (``None`` when
        paused before the first iteration's permutation draw).
    rng_state:
        ``numpy`` bit-generator state to restore on resume.
    started:
        Whether the start mapping's own evaluation completed (a climb
        can starve before its very first oracle call).
    """

    assignments: tuple[tuple[int, ...], ...]
    period: float
    evaluations: int
    trace: tuple[float, ...]
    iteration: int
    cursor: int
    order: tuple[int, ...] | None
    rng_state: dict
    started: bool


def _restore_rng(state: dict) -> np.random.Generator:
    """Rebuild a Generator from a stored bit-generator state dict."""
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


@dataclass(frozen=True)
class MappingSearchResult:
    """Outcome of a mapping search.

    Attributes
    ----------
    mapping:
        Best mapping found.
    period:
        Its exact period.
    evaluations:
        Number of period-oracle calls spent *by this call* (a resumed
        climb reports only the evaluations of the resuming grant; the
        checkpoint carries the cumulative count).
    trace:
        Periods of successive accepted solutions (monotone for the
        hill-climbers; useful for convergence plots).  Like
        ``evaluations``, only this call's accepted moves.
    checkpoint:
        ``None`` when the climb finished (converged or hit
        ``max_iters``); a :class:`SearchCheckpoint` when a budget dried
        up mid-climb and the search can be resumed.
    """

    mapping: Mapping
    period: float
    evaluations: int
    trace: tuple[float, ...]
    checkpoint: SearchCheckpoint | None = None


def _evaluate(
    app: Application,
    plat: Platform,
    mapping: Mapping,
    model: CommModel,
    max_paths: int,
    engine: BatchEngine,
) -> float:
    if mapping.num_paths > max_paths:
        return float("inf")
    inst = Instance(app, plat, mapping)
    return engine.evaluate(inst, model).period


def _search_engine(engine: BatchEngine | None, max_paths: int) -> BatchEngine:
    """The caller's engine, or a fresh one budgeted like the scalar path."""
    return engine if engine is not None else BatchEngine(max_rows=max_paths + 1)


def random_mapping(
    app: Application,
    plat: Platform,
    rng: np.random.Generator,
    max_paths: int = 3000,
) -> Mapping:
    """Uniform random replicated mapping (at least one replica per stage)."""
    n, p = app.n_stages, plat.n_processors
    counts = random_replication(n, p, rng, max_paths=max_paths)
    perm = rng.permutation(p)
    bounds = np.cumsum((0,) + counts)
    return Mapping(
        [tuple(int(x) for x in perm[bounds[i]: bounds[i + 1]]) for i in range(n)],
        n_processors=p,
    )


def perturb_mapping(
    mapping: Mapping,
    rng: np.random.Generator,
    moves: int = 2,
    n_processors: int | None = None,
) -> Mapping:
    """Kick a mapping with ``moves`` random swap/move/rotate moves.

    The portfolio's *perturbed-elite* restarts climb from a randomized
    neighbor of the incumbent instead of a fresh random draw — close
    enough to inherit its structure, far enough to escape its basin.
    Every move preserves mapping validity (a processor still executes at
    most one stage), so the result always constructs.

    Examples
    --------
    >>> mp = Mapping([(0,), (1, 2), (3,)])
    >>> kicked = perturb_mapping(mp, np.random.default_rng(7), moves=3)
    >>> sorted(u for s in kicked.assignments for u in s)
    [0, 1, 2, 3]
    """
    assign = [list(s) for s in mapping.assignments]
    n = len(assign)
    for _ in range(max(0, moves)):
        kind = int(rng.integers(3))
        if kind == 0 and n >= 2:
            i, j = (int(x) for x in rng.choice(n, size=2, replace=False))
            a = int(rng.integers(len(assign[i])))
            b = int(rng.integers(len(assign[j])))
            assign[i][a], assign[j][b] = assign[j][b], assign[i][a]
        elif kind == 1 and n >= 2:
            donors = [i for i in range(n) if len(assign[i]) >= 2]
            if not donors:
                continue
            i = donors[int(rng.integers(len(donors)))]
            j = int(rng.integers(n - 1))
            j += j >= i
            proc = assign[i].pop(int(rng.integers(len(assign[i]))))
            assign[j].append(proc)
        else:
            stages = [i for i in range(n) if len(assign[i]) >= 2]
            if not stages:
                continue
            i = stages[int(rng.integers(len(stages)))]
            r = 1 + int(rng.integers(len(assign[i]) - 1))
            assign[i] = assign[i][r:] + assign[i][:r]
    return Mapping([tuple(s) for s in assign], n_processors=n_processors)


def greedy_mapping(
    app: Application,
    plat: Platform,
    model: CommModel | str = "overlap",
    max_paths: int = 3000,
    engine: BatchEngine | None = None,
    budget: _Budget | None = None,
) -> MappingSearchResult:
    """Greedy constructive heuristic.

    Starts from the period-minimizing one-to-one mapping of each stage to
    the fastest unused processor, then repeatedly grants one extra replica
    to the stage whose computation column currently dominates the period,
    choosing the fastest remaining processor — stopping when no grant
    improves the exact period (or processors run out).

    ``budget`` (an :class:`repro.search.EvaluationBudget`-style pool)
    bounds the oracle calls; when it runs dry the incumbent is returned
    (``period=inf`` and an empty trace if not even the seed mapping
    could be evaluated).
    """
    model = CommModel.parse(model)
    eng = _search_engine(engine, max_paths)
    n, p = app.n_stages, plat.n_processors
    if p < n:
        raise ValidationError("need at least one processor per stage")
    # Fastest processors first; seed assignment round-robins the best n.
    speed_order = list(np.argsort(-plat.speeds, kind="stable"))
    assign: list[list[int]] = [[int(speed_order[i])] for i in range(n)]
    free = [int(u) for u in speed_order[n:]]

    evaluations = 0

    def period_of(a: list[list[int]]) -> float:
        nonlocal evaluations
        _charge(budget)
        evaluations += 1
        return _evaluate(app, plat, Mapping([tuple(s) for s in a]), model, max_paths, eng)

    try:
        best = period_of(assign)
    except _BudgetExhausted:
        return MappingSearchResult(
            mapping=Mapping([tuple(s) for s in assign]),
            period=float("inf"), evaluations=evaluations, trace=(),
        )
    trace = [best]
    try:
        while free:
            candidate_best: tuple[float, int] | None = None
            u = free[0]
            for stage in range(n):
                trial = [list(s) for s in assign]
                trial[stage].append(u)
                val = period_of(trial)
                if candidate_best is None or val < candidate_best[0]:
                    candidate_best = (val, stage)
            if candidate_best is None or candidate_best[0] >= best:
                break
            best = candidate_best[0]
            assign[candidate_best[1]].append(u)
            free.pop(0)
            trace.append(best)
    except _BudgetExhausted:
        pass  # pool ran dry mid-scan: keep the incumbent
    return MappingSearchResult(
        mapping=Mapping([tuple(s) for s in assign]),
        period=best,
        evaluations=evaluations,
        trace=tuple(trace),
    )


def _neighborhood_moves(assign: list[list[int]]) -> list[list[list[int]]]:
    """All candidate moves of one hill-climbing iteration, in the fixed
    enumeration order the shuffled scan permutes.

    Moves: (a) swap two processors between stages, (b) move a spare or
    replicated processor to another stage, (c) rotate a stage's replica
    order (changes round-robin phase, which matters for comm pairing).
    """
    n = len(assign)
    moves: list[list[list[int]]] = []
    # (a) swaps
    for i in range(n):
        for j in range(i + 1, n):
            for a in range(len(assign[i])):
                for b in range(len(assign[j])):
                    trial = [list(s) for s in assign]
                    trial[i][a], trial[j][b] = trial[j][b], trial[i][a]
                    moves.append(trial)
    # (b) moves of a replica (only from stages with >= 2 replicas)
    for i in range(n):
        if len(assign[i]) < 2:
            continue
        for a in range(len(assign[i])):
            for j in range(n):
                if j == i:
                    continue
                trial = [list(s) for s in assign]
                proc = trial[i].pop(a)
                trial[j].append(proc)
                moves.append(trial)
    # (c) rotations
    for i in range(n):
        if len(assign[i]) >= 2:
            trial = [list(s) for s in assign]
            trial[i] = trial[i][1:] + trial[i][:1]
            moves.append(trial)
    return moves


def local_search_mapping(
    app: Application,
    plat: Platform,
    model: CommModel | str = "overlap",
    rng: np.random.Generator | None = None,
    start: Mapping | None = None,
    max_iters: int = 200,
    max_paths: int = 3000,
    engine: BatchEngine | None = None,
    n_jobs: int | None = None,
    budget: _Budget | None = None,
    checkpoint: SearchCheckpoint | None = None,
) -> MappingSearchResult:
    """First-improvement hill climbing over mapping neighborhoods.

    Moves: (a) swap two processors between stages, (b) move a spare or
    replicated processor to another stage, (c) rotate a stage's replica
    order (changes round-robin phase, which matters for comm pairing).

    With ``n_jobs`` set (0 = all cores, k > 1 = k workers) every
    iteration evaluates its whole candidate neighborhood through
    :func:`repro.engine.evaluate` and *then* scans it in the same
    shuffled order for the first improving move — the accepted-solution
    trajectory is identical to the serial search, only ``evaluations``
    grows (the serial path stops evaluating at the first improvement).
    Worker processes are pooled per iteration, so the shared ``engine``
    cache benefits the serial paths; sharded chunks warm their own
    per-worker caches.

    ``budget`` bounds the oracle calls against a shared pool (see
    :class:`repro.search.EvaluationBudget`): the serial scan stops at
    the last granted evaluation; the batch scan takes a grant for its
    whole (truncated) neighborhood up front and refunds everything past
    the first improving move.  Budgeted searches therefore charge — and
    stop — exactly like the serial search at any ``n_jobs``, and the
    incumbent is returned when the pool dries either way.

    A search its budget paused mid-climb carries a
    :class:`SearchCheckpoint` on the result; pass it back as
    ``checkpoint=`` (with a fresh budget grant) to resume the climb
    exactly where it stopped — ``rng`` and ``start`` are then taken
    from the checkpoint and the arguments are ignored.  Pausing at any
    grant boundary and resuming is bit-identical to one uninterrupted
    climb given the same total grant, at any ``n_jobs``.
    """
    model = CommModel.parse(model)
    eng = _search_engine(engine, max_paths)
    if checkpoint is not None:
        rng = _restore_rng(checkpoint.rng_state)
        mapping = Mapping([tuple(s) for s in checkpoint.assignments],
                          n_processors=plat.n_processors)
        best = checkpoint.period
        prior_evals = checkpoint.evaluations
        prior_trace = checkpoint.trace
        iteration = checkpoint.iteration
        cursor = checkpoint.cursor
        order = None if checkpoint.order is None else \
            np.asarray(checkpoint.order, dtype=np.intp)
        started = checkpoint.started
    else:
        rng = rng if rng is not None else np.random.default_rng(0)
        mapping = start if start is not None \
            else random_mapping(app, plat, rng, max_paths)
        best = float("inf")
        prior_evals = 0
        prior_trace = ()
        iteration = 0
        cursor = 0
        order = None
        started = False

    evaluations = 0  # this grant only; the checkpoint carries the total
    trace: list[float] = []

    def paused() -> MappingSearchResult:
        """The incumbent plus a checkpoint to resume from (pool dried)."""
        cp = SearchCheckpoint(
            assignments=mapping.assignments,
            period=best,
            evaluations=prior_evals + evaluations,
            trace=prior_trace + tuple(trace),
            iteration=iteration,
            cursor=cursor,
            order=None if order is None else tuple(int(k) for k in order),
            rng_state=rng.bit_generator.state,
            started=started,
        )
        return MappingSearchResult(mapping=mapping, period=best,
                                   evaluations=evaluations,
                                   trace=tuple(trace), checkpoint=cp)

    if not started:
        if budget is not None and budget.take(1) == 0:
            return paused()
        evaluations += 1
        best = _evaluate(app, plat, mapping, model, max_paths, eng)
        started = True
        trace.append(best)

    while iteration < max_iters:
        assign = [list(s) for s in mapping.assignments]
        moves = _neighborhood_moves(assign)
        if order is None:
            order = rng.permutation(len(moves))
            cursor = 0
        candidates: list[tuple[int, Mapping]] = []
        for k in order:
            try:
                m2 = Mapping([tuple(s) for s in moves[int(k)]],
                             n_processors=plat.n_processors)
            except ValidationError:
                continue
            candidates.append((int(k), m2))
        improved = False
        pause = False
        if n_jobs is not None and n_jobs != 1:
            # Batch path: evaluate the whole remaining (valid)
            # neighborhood at once, then accept the first improving move
            # in shuffled order — the same move the serial scan accepts.
            # Budget truncation keeps the shuffled scan prefix, so the
            # trajectory matches the serial search up to the dry point.
            todo = candidates[cursor:]
            grant = len(todo) if budget is None else budget.take(len(todo))
            scan = todo[:grant]
            feasible = [(k, m2) for k, m2 in scan
                        if m2.num_paths <= max_paths]
            insts = [Instance(app, plat, m2) for _, m2 in feasible]
            # engine= and n_jobs are mutually exclusive in evaluate()
            # (workers cannot share the caller's cache), so pick the path
            # explicitly: shard big neighborhoods across fresh per-worker
            # caches inheriting the warm-start mode, keep small ones on
            # the shared engine — whose mode="many" path locksteps any
            # same-topology runs the move generator proposes.
            if len(insts) >= MIN_PARALLEL_BATCH:
                results = evaluate(insts, model, max_rows=max_paths + 1,
                                   n_jobs=n_jobs,
                                   warm_start=eng.warm_start)
            else:
                results = eng.evaluate(insts, model, mode="many")
            values = {k: float("inf") for k, _ in scan}
            values.update({k: r.period for (k, _), r in zip(feasible, results)})
            by_move = dict(scan)
            charged = grant
            for pos, (k, _) in enumerate(scan):
                if values[k] < best * (1 - 1e-12):
                    mapping, best = by_move[k], values[k]
                    trace.append(best)
                    improved = True
                    if budget is not None:
                        # Serial-equivalent cost: the sequential scan
                        # would have stopped at this move — refund the
                        # speculatively-granted remainder so budgeted
                        # searches charge identically at any n_jobs.
                        budget.refund(grant - (pos + 1))
                        charged = pos + 1
                    break
            evaluations += charged
            if not improved and grant < len(todo):
                cursor += grant
                pause = True
        else:
            pos = cursor
            while pos < len(candidates):
                k, m2 = candidates[pos]
                if budget is not None and budget.take(1) == 0:
                    cursor = pos
                    pause = True
                    break
                evaluations += 1
                val = _evaluate(app, plat, m2, model, max_paths, eng)
                if val < best * (1 - 1e-12):
                    mapping, best = m2, val
                    trace.append(best)
                    improved = True
                    break
                pos += 1
        if pause:
            return paused()
        if not improved:
            break
        iteration += 1
        order = None
        cursor = 0
    return MappingSearchResult(mapping=mapping, period=best,
                               evaluations=evaluations, trace=tuple(trace))
