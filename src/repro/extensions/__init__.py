"""Beyond-paper extensions.

The paper computes the period of a *given* mapping and points at two
neighboring problems: finding good mappings (NP-hard, [3] of the paper)
and dynamic platforms whose speeds are random variables (its stated
future work).  This package ships practical baselines for both, built on
the exact period oracle of :mod:`repro.core.throughput`.
"""

from .dynamic import DynamicPlatformModel, ThroughputDistribution, simulate_dynamic
from .mapping_opt import (
    MappingSearchResult,
    SearchCheckpoint,
    greedy_mapping,
    local_search_mapping,
    perturb_mapping,
    random_mapping,
)

__all__ = [
    "greedy_mapping",
    "local_search_mapping",
    "perturb_mapping",
    "random_mapping",
    "MappingSearchResult",
    "SearchCheckpoint",
    "DynamicPlatformModel",
    "ThroughputDistribution",
    "simulate_dynamic",
]
