"""Small shared helpers: integer lattice math, validation, canonical JSON."""

from __future__ import annotations

import json
import math
from collections.abc import Iterable, Sequence

__all__ = [
    "lcm_all",
    "gcd_all",
    "check_positive",
    "check_non_negative",
    "check_finite",
    "format_time",
    "canonical_json",
]


def canonical_json(obj: object, indent: int | None = None) -> str:
    """Byte-deterministic JSON text of a plain-data object.

    Keys are sorted at every nesting level and floats render with
    ``repr`` (shortest round-trip, platform-independent), so equal
    values always produce equal bytes — the property the campaign
    store's content digests and diffable artifacts rely on.  ``NaN`` /
    ``inf`` are rejected: digested payloads must round-trip through
    standard JSON.

    ``indent=None`` gives the compact separators used for digests;
    pass ``indent=2`` for human-readable artifact files.

    Lives here (not :mod:`repro.experiments.io`, which re-exports it)
    so that low-level layers — :meth:`repro.core.instance.Instance.
    to_json`, :func:`repro.petri.serialization.tpn_to_json` — can emit
    canonical bytes without importing the experiments stack.
    """
    separators = (",", ":") if indent is None else (",", ": ")
    return json.dumps(
        obj, sort_keys=True, separators=separators, indent=indent,
        allow_nan=False,
    )


def lcm_all(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of positive integers.

    This is the ``m`` of Proposition 1: the number of distinct round-robin
    paths of a replicated mapping is ``lcm(m_0, ..., m_{n-1})``.

    >>> lcm_all([1, 2, 3, 1])
    6
    >>> lcm_all([5, 21, 27, 11])   # Example C of the paper
    10395
    """
    result = 1
    for v in values:
        v = int(v)
        if v <= 0:
            raise ValueError(f"lcm is only defined for positive integers, got {v}")
        result = math.lcm(result, v)
    return result


def gcd_all(values: Iterable[int]) -> int:
    """Greatest common divisor of an iterable of positive integers."""
    result = 0
    for v in values:
        v = int(v)
        if v <= 0:
            raise ValueError(f"gcd is only defined for positive integers, got {v}")
        result = math.gcd(result, v)
    return result


def check_positive(name: str, values: Sequence[float]) -> None:
    """Raise :class:`ValueError` unless every entry is finite and ``> 0``."""
    for i, v in enumerate(values):
        if not math.isfinite(v) or v <= 0:
            raise ValueError(f"{name}[{i}] must be finite and positive, got {v!r}")


def check_non_negative(name: str, values: Sequence[float]) -> None:
    """Raise :class:`ValueError` unless every entry is finite and ``>= 0``."""
    for i, v in enumerate(values):
        if not math.isfinite(v) or v < 0:
            raise ValueError(f"{name}[{i}] must be finite and non-negative, got {v!r}")


def check_finite(name: str, value: float) -> float:
    """Raise :class:`ValueError` unless ``value`` is a finite float."""
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def format_time(t: float, digits: int = 6) -> str:
    """Human-friendly rendering of a time value.

    Integers print without a decimal point (``189`` not ``189.0``) which
    keeps tables aligned with the paper's own notation.  Non-finite
    values (a budget-starved search reports ``period=inf``) render as
    ``inf``/``nan`` instead of raising.
    """
    if not math.isfinite(t):
        return str(t)
    r = round(t)
    if abs(t - r) < 10 ** (-digits):
        return str(int(r))
    return f"{t:.{digits}g}"
