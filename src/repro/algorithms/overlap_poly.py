"""Polynomial period computation for OVERLAP ONE-PORT (Theorem 1).

Under the OVERLAP model the TPN's cycles never leave their column, so::

    P = max( max_i  comp-column(i),  max_i  comm-column(i) )

where the computation column of ``S_i`` contributes
``max_u (w_i/Pi_u) / m_i`` and the communication column of ``F_i``
contributes ``max_g ratio(pattern G'_g) / lcm(m_i, m_{i+1})`` over its
``gcd(m_i, m_{i+1})`` connected components (see
:mod:`repro.petri.reduction` for the pattern construction).

Total cost ``O(sum_i (m_i * m_{i+1})^3)`` — polynomial in the mapping
size even when the full net has ``lcm(m_i)`` rows (Example C: pattern
graphs of 63 cells stand in for a 10395-row net).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import Instance
from ..petri.reduction import CommPattern, CompColumn, comm_patterns, computation_column

__all__ = ["ColumnContribution", "OverlapBreakdown", "overlap_period"]


@dataclass(frozen=True)
class ColumnContribution:
    """Per-data-set period contribution of one TPN column.

    Attributes
    ----------
    column:
        TPN column index (``2i`` computation, ``2i + 1`` communication).
    kind:
        ``"comp"`` or ``"comm"``.
    stage_or_file:
        Stage index (computation) or file index (communication).
    value:
        The contribution — the period is the max over all columns.
    comp:
        Detailed :class:`CompColumn` for computation columns.
    patterns:
        The component pattern graphs for communication columns.
    """

    column: int
    kind: str
    stage_or_file: int
    value: float
    comp: CompColumn | None = None
    patterns: tuple[CommPattern, ...] = ()

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.kind == "comp":
            return (
                f"column {self.column} (S{self.stage_or_file} computation): "
                f"{self.value:g} — slowest replica P{self.comp.critical_proc}"
            )
        return (
            f"column {self.column} (F{self.stage_or_file} transmission): "
            f"{self.value:g} over {len(self.patterns)} component(s)"
        )


@dataclass(frozen=True)
class OverlapBreakdown:
    """Full column decomposition backing an OVERLAP period value.

    Attributes
    ----------
    period:
        The per-data-set period ``P`` (max of contributions).
    columns:
        Per-column contributions, in column order.
    """

    period: float
    columns: tuple[ColumnContribution, ...]

    @property
    def critical_columns(self) -> tuple[ColumnContribution, ...]:
        """Columns attaining the period (the critical part of the net)."""
        tol = 1e-9 * max(self.period, 1.0)
        return tuple(c for c in self.columns if abs(c.value - self.period) <= tol)


def overlap_period(inst: Instance) -> OverlapBreakdown:
    """Theorem 1: the OVERLAP ONE-PORT period in polynomial time.

    Examples
    --------
    Example B of the paper — no critical resource, ``P = 291.66...``
    strictly above the cycle-time bound 258.33:

    >>> from repro.experiments.examples_paper import example_b
    >>> round(overlap_period(example_b()).period, 2)
    291.67
    """
    n = inst.n_stages
    cols: list[ColumnContribution] = []
    for i in range(n):
        comp = computation_column(inst, i)
        cols.append(
            ColumnContribution(
                column=2 * i,
                kind="comp",
                stage_or_file=i,
                value=comp.contribution,
                comp=comp,
            )
        )
        if i < n - 1:
            pats = tuple(comm_patterns(inst, i))
            value = max(pat.contribution() for pat in pats)
            cols.append(
                ColumnContribution(
                    column=2 * i + 1,
                    kind="comm",
                    stage_or_file=i,
                    value=value,
                    patterns=pats,
                )
            )
    cols.sort(key=lambda c: c.column)
    period = max(c.value for c in cols)
    return OverlapBreakdown(period=period, columns=tuple(cols))
