"""Period algorithms: Theorem 1 (polynomial), full-TPN, bounds."""

from .bounds import (
    CriticalResourceVerdict,
    classify_critical_resource,
    period_lower_bound,
)
from .general_tpn import TpnSolution, describe_critical_cycle, tpn_period
from .overlap_poly import ColumnContribution, OverlapBreakdown, overlap_period
from .verify import PeriodCertificate, certify_period, check_certificate

__all__ = [
    "PeriodCertificate",
    "certify_period",
    "check_certificate",
    "overlap_period",
    "OverlapBreakdown",
    "ColumnContribution",
    "tpn_period",
    "TpnSolution",
    "describe_critical_cycle",
    "period_lower_bound",
    "classify_critical_resource",
    "CriticalResourceVerdict",
]
