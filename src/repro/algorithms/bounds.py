"""Period bounds and critical-resource classification (Section 2 & 5).

``M_ct``, the largest resource cycle-time, lower-bounds the period in
both models.  The paper's experimental question (Table 2) is *when the
bound is tight*: an instance "has a critical resource" when ``P = M_ct``
(some resource is busy 100% of steady state) and lacks one when
``P > M_ct`` (every resource idles at some point of every period).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cycle_time import CycleTimeReport, cycle_times
from ..core.instance import Instance
from ..core.models import CommModel

__all__ = ["CriticalResourceVerdict", "classify_critical_resource", "period_lower_bound"]

#: Relative gap below which the bound is considered attained; the paper's
#: Table 2 reports gaps of 3-9% for the strict-model exceptions, orders of
#: magnitude above this tolerance.
DEFAULT_REL_TOL = 1e-9


@dataclass(frozen=True)
class CriticalResourceVerdict:
    """Outcome of the critical-resource test for one instance.

    Attributes
    ----------
    period:
        The exact period ``P``.
    mct:
        The lower bound ``M_ct``.
    has_critical_resource:
        ``True`` when ``P`` equals ``M_ct`` (within tolerance).
    relative_gap:
        ``(P - M_ct) / M_ct`` — the paper reports this as the "diff"
        (less than 9% across all Table 2 exceptions).
    report:
        The full cycle-time report (per-resource values).
    """

    period: float
    mct: float
    has_critical_resource: bool
    relative_gap: float
    report: CycleTimeReport

    @property
    def critical_resources(self) -> tuple[tuple[int, str], ...]:
        """The saturated resources when the bound is attained."""
        if not self.has_critical_resource:
            return ()
        return self.report.critical_resources()


def period_lower_bound(inst: Instance, model: CommModel | str) -> float:
    """``M_ct`` — maximum resource cycle-time, a lower bound on ``P``."""
    return cycle_times(inst, model).mct


def classify_critical_resource(
    inst: Instance,
    model: CommModel | str,
    period: float,
    rel_tol: float = DEFAULT_REL_TOL,
) -> CriticalResourceVerdict:
    """Compare an exact period against ``M_ct``.

    Parameters
    ----------
    inst, model:
        The instance and communication model.
    period:
        The exact period computed by any of the solvers.
    rel_tol:
        Relative tolerance for deciding ``P == M_ct``.
    """
    report = cycle_times(inst, model)
    gap = (period - report.mct) / report.mct if report.mct > 0 else 0.0
    return CriticalResourceVerdict(
        period=period,
        mct=report.mct,
        has_critical_resource=gap <= rel_tol,
        relative_gap=gap,
        report=report,
    )
