"""Independent certification of computed periods.

A claimed period ``P`` for a net is *certified* by exhibiting:

1. a **primal certificate** — a cycle of the TPN whose duration/token
   ratio equals ``m * P`` (so the period is achievable: some dependency
   chain really forces it), and
2. a **dual certificate** — node potentials ``h`` with
   ``h(src) + w(e) - (m * P) * t(e) <= h(dst)`` for *every* place
   (so no cycle can be slower: summing the inequality around any cycle
   gives ``ratio <= m * P``).

Together these prove optimality without trusting any particular solver —
the check is a few vectorized array comparisons that a reviewer can read
in one screen.  ``certify_period`` builds both certificates and
re-verifies them from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..core.models import CommModel
from ..errors import SolverError
from ..maxplus.howard import max_cycle_ratio_howard
from ..maxplus.spectral import potentials
from ..petri.builder import DEFAULT_MAX_ROWS, build_tpn

__all__ = ["PeriodCertificate", "certify_period", "check_certificate"]


@dataclass(frozen=True)
class PeriodCertificate:
    """A self-contained optimality proof for a period value.

    Attributes
    ----------
    period:
        The certified per-data-set period ``P``.
    m:
        Rows of the net (``lambda = m * P``).
    cycle_edges:
        Places of the primal certificate cycle (edge indices into the
        net's ratio graph).
    potentials:
        The dual certificate vector ``h`` (one entry per transition).
    model:
        Communication model of the certified net.
    """

    period: float
    m: int
    cycle_edges: tuple[int, ...]
    potentials: np.ndarray
    model: CommModel


def certify_period(
    inst: Instance,
    model: CommModel | str,
    max_rows: int | None = DEFAULT_MAX_ROWS,
) -> PeriodCertificate:
    """Compute the period *and* both optimality certificates.

    Raises :class:`SolverError` if certificate construction fails (which
    would indicate a solver bug — this is exercised by the test-suite on
    random instances).
    """
    model = CommModel.parse(model)
    net = build_tpn(inst, model, max_rows=max_rows)
    graph = net.to_ratio_graph()
    res = max_cycle_ratio_howard(graph)
    lam = res.value
    h = potentials(graph, lam)
    cert = PeriodCertificate(
        period=lam / net.n_rows,
        m=net.n_rows,
        cycle_edges=tuple(res.cycle_edges),
        potentials=h,
        model=model,
    )
    check_certificate(inst, cert, max_rows=max_rows)
    return cert


def check_certificate(
    inst: Instance,
    cert: PeriodCertificate,
    rel_tol: float = 1e-9,
    max_rows: int | None = DEFAULT_MAX_ROWS,
) -> None:
    """Re-verify a certificate from scratch (raises on any failure).

    Rebuilds the net from the instance, then checks:

    * the primal cycle is a real cycle of the net and its exact
      duration/token ratio equals ``m * period``;
    * the dual potentials satisfy every place's inequality at
      ``lambda = m * period``.
    """
    net = build_tpn(inst, cert.model, max_rows=max_rows)
    graph = net.to_ratio_graph()
    lam = cert.period * cert.m
    scale = max(1.0, float(np.abs(graph.weight).max()))

    # --- primal: the cycle exists and achieves lam ---------------------
    edges = list(cert.cycle_edges)
    if not edges:
        raise SolverError("certificate has no primal cycle")
    for e, e_next in zip(edges, edges[1:] + edges[:1]):
        if int(graph.dst[e]) != int(graph.src[e_next]):
            raise SolverError(
                f"primal certificate is not a cycle: place {e} ends at "
                f"{int(graph.dst[e])} but place {e_next} starts at "
                f"{int(graph.src[e_next])}"
            )
    achieved = graph.cycle_ratio_of(edges)
    if abs(achieved - lam) > rel_tol * max(lam, 1.0):
        raise SolverError(
            f"primal cycle achieves {achieved}, claimed {lam}"
        )

    # --- dual: no cycle can exceed lam ---------------------------------
    h = np.asarray(cert.potentials, dtype=float)
    if h.shape != (graph.n_nodes,):
        raise SolverError("dual certificate has wrong dimension")
    slack = h[graph.src] + (graph.weight - lam * graph.tokens) - h[graph.dst]
    worst = float(slack.max()) if slack.size else 0.0
    if worst > rel_tol * scale:
        e = int(np.argmax(slack))
        raise SolverError(
            f"dual certificate violated at place {e} "
            f"({int(graph.src[e])} -> {int(graph.dst[e])}): slack {worst}"
        )
