"""General period computation on the full TPN (both models).

Builds the complete ``m x (2n - 1)`` timed Petri net, reduces it to a
token graph and extracts the maximum cycle ratio with Howard's policy
iteration (per strongly connected component).  The per-data-set period is
``lambda / m`` since the ``m`` last-column transitions each complete one
data set per ``lambda``.

This is the only exact method known for STRICT ONE-PORT (the paper
leaves its polynomial-time status open); for OVERLAP it serves as the
cross-check oracle of Theorem 1's polynomial algorithm.  Cost is
governed by ``m = lcm(m_i)`` — hence the row budget and
:class:`~repro.errors.ReplicationExplosionError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import Instance
from ..core.models import CommModel
from ..errors import ValidationError
from ..maxplus.cycle_ratio import CycleRatioResult, max_cycle_ratio
from ..petri.builder import DEFAULT_MAX_ROWS, build_tpn
from ..petri.net import TimedEventGraph, Transition

__all__ = ["TpnSolution", "tpn_period", "describe_critical_cycle"]


@dataclass(frozen=True)
class TpnSolution:
    """Result of a full-TPN period computation.

    Attributes
    ----------
    period:
        Per-data-set period ``lambda / m``.
    ratio:
        The raw solver result; ``ratio.value`` is ``lambda`` (time for one
        full round-robin sweep of ``m`` data sets on the critical cycle).
    net:
        The constructed net (reusable for simulation / DOT export).
        ``None`` for solutions produced by the batch engine
        (:mod:`repro.engine`), which never materializes the per-instance
        net — ``ratio`` still carries the critical cycle's indices.
    """

    period: float
    ratio: CycleRatioResult
    net: TimedEventGraph | None

    @property
    def critical_transitions(self) -> tuple[Transition, ...]:
        """Transitions of the extracted critical cycle (Figure 8).

        Raises
        ------
        ValidationError
            When the solution carries no net (batch-engine results).
        """
        if self.net is None:
            raise ValidationError(
                "this TpnSolution has no net attached (batch-engine result); "
                "rebuild it with tpn_period() to inspect transitions"
            )
        return tuple(self.net.transitions[t] for t in self.ratio.cycle_nodes)


def tpn_period(
    inst: Instance,
    model: CommModel | str,
    max_rows: int | None = DEFAULT_MAX_ROWS,
    solver: str = "auto",
) -> TpnSolution:
    """Compute the period through the full timed Petri net.

    Parameters
    ----------
    inst:
        Problem instance.
    model:
        ``"overlap"`` or ``"strict"``.
    max_rows:
        Budget on ``m = lcm(m_i)`` (``None`` disables).
    solver:
        Cycle-ratio solver passed to
        :func:`repro.maxplus.cycle_ratio.max_cycle_ratio`.

    Examples
    --------
    STRICT ONE-PORT on Example A — the period 230.67 strictly exceeds the
    largest cycle-time 215.83 (no critical resource):

    >>> from repro.experiments.examples_paper import example_a
    >>> sol = tpn_period(example_a(), "strict")
    >>> round(sol.period, 2)
    230.67
    """
    net = build_tpn(inst, model, max_rows=max_rows)
    ratio = max_cycle_ratio(net.to_ratio_graph(), method=solver)
    return TpnSolution(period=ratio.value / net.n_rows, ratio=ratio, net=net)


def describe_critical_cycle(sol: TpnSolution) -> str:
    """Readable rendering of the critical cycle (one line per transition).

    The cycle of Figure 8 mixes computations and transmissions of several
    processors — exactly what this listing shows for any instance.
    """
    if sol.net is None:
        raise ValidationError(
            "this TpnSolution has no net attached (batch-engine result); "
            "rebuild it with tpn_period() to inspect transitions"
        )
    lines = [
        f"critical cycle: ratio {sol.ratio.value:g} over {sol.net.n_rows} "
        f"data sets -> period {sol.period:g}"
    ]
    for t in sol.critical_transitions:
        lines.append(f"  {t.label:<28} duration {t.duration:g}")
    return "\n".join(lines)
