"""Structural validation of workflow TPNs.

These checks encode the invariants Section 3 of the paper states about
its construction; the test-suite runs them on randomly generated
instances.  :func:`validate_tpn` returns a :class:`TpnReport` and raises
on violations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeadlockError, ValidationError
from .net import PlaceKind, TimedEventGraph

__all__ = ["TpnReport", "validate_tpn"]


@dataclass(frozen=True)
class TpnReport:
    """Summary statistics of a validated net.

    Attributes
    ----------
    n_rows, n_columns, n_transitions, n_places:
        Net dimensions (``n_transitions = n_rows * n_columns``).
    tokens:
        Total initial marking — equals the number of round-robin circuits.
    places_by_kind:
        Count of places per constraint class.
    """

    n_rows: int
    n_columns: int
    n_transitions: int
    n_places: int
    tokens: int
    places_by_kind: dict[str, int]


def validate_tpn(net: TimedEventGraph) -> TpnReport:
    """Check all structural invariants of a built workflow TPN.

    Verified properties:

    * the transition matrix is dense: ``m`` rows by ``2n - 1`` columns,
      transitions indexed row-major, alternating comp/comm kinds;
    * flow places: one per consecutive column pair per row, zero tokens;
    * every round-robin circuit place stays within the column span allowed
      by its kind and carries a token only on its wrap-around arc;
    * each circuit holds exactly **one** token in total;
    * liveness: the 0-token subgraph is acyclic (every cycle of the net
      carries at least one token);
    * durations are non-negative.

    Raises
    ------
    ValidationError
        On any structural violation.
    DeadlockError
        When a token-free cycle exists.
    """
    m, n_cols = net.n_rows, net.n_columns
    if net.n_transitions != m * n_cols:
        raise ValidationError(
            f"expected {m * n_cols} transitions ({m} rows x {n_cols} "
            f"columns), found {net.n_transitions}"
        )

    # -- transitions -----------------------------------------------------
    for t in net.transitions:
        if t.index != t.row * n_cols + t.column:
            raise ValidationError(f"transition {t.index} has inconsistent position")
        expected_kind = "comp" if t.column % 2 == 0 else "comm"
        if t.kind != expected_kind:
            raise ValidationError(
                f"transition at column {t.column} should be {expected_kind}, "
                f"found {t.kind}"
            )
        if t.duration < 0:
            raise ValidationError(f"transition {t.index} has negative duration")
        if t.kind == "comm" and len(t.procs) != 2:
            raise ValidationError(f"transmission {t.index} needs (src, dst) procs")
        if t.kind == "comp" and len(t.procs) != 1:
            raise ValidationError(f"computation {t.index} needs a single proc")

    # -- places ------------------------------------------------------------
    by_kind: dict[str, int] = {k: 0 for k in PlaceKind.ALL}
    circuit_tokens: dict[str, int] = {}
    circuit_sizes: dict[str, int] = {}
    for p in net.places:
        by_kind[p.kind] += 1
        src_t, dst_t = net.transitions[p.src], net.transitions[p.dst]
        if p.kind == PlaceKind.FLOW:
            if p.tokens != 0:
                raise ValidationError(f"flow place {p.index} carries tokens")
            if src_t.row != dst_t.row or dst_t.column != src_t.column + 1:
                raise ValidationError(
                    f"flow place {p.index} must link consecutive columns of "
                    f"one row"
                )
        else:
            if not p.resource:
                raise ValidationError(f"circuit place {p.index} lacks a resource tag")
            key = f"{p.kind}:{p.resource}"
            circuit_tokens[key] = circuit_tokens.get(key, 0) + p.tokens
            circuit_sizes[key] = circuit_sizes.get(key, 0) + 1
            if p.kind in (PlaceKind.RR_COMP, PlaceKind.RR_OUT, PlaceKind.RR_IN):
                if src_t.column != dst_t.column:
                    raise ValidationError(
                        f"round-robin place {p.index} must stay in one column"
                    )
            elif p.kind == PlaceKind.RCS:
                # send (or last op) of one row to receive (or first op) of
                # the next row of the same processor.
                if src_t.column < dst_t.column:
                    raise ValidationError(
                        f"strict serialization place {p.index} must point "
                        f"backwards (or within) the processor's column span"
                    )

    # -- one token per circuit ---------------------------------------------
    for key, tok in circuit_tokens.items():
        if tok != 1:
            raise ValidationError(f"circuit {key} carries {tok} tokens, expected 1")

    # -- flow place count ----------------------------------------------------
    expected_flow = m * (n_cols - 1)
    if by_kind[PlaceKind.FLOW] != expected_flow:
        raise ValidationError(
            f"expected {expected_flow} flow places, found {by_kind[PlaceKind.FLOW]}"
        )

    # -- liveness -------------------------------------------------------------
    graph = net.to_ratio_graph()
    if not graph.is_live():
        raise DeadlockError("the net contains a token-free cycle")

    return TpnReport(
        n_rows=m,
        n_columns=n_cols,
        n_transitions=net.n_transitions,
        n_places=net.n_places,
        tokens=net.total_tokens(),
        places_by_kind={k: v for k, v in by_kind.items() if v},
    )
