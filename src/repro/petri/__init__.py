"""Timed Petri net models of replicated workflow mappings."""

from .builder import DEFAULT_MAX_ROWS, build_tpn
from .marking import (
    FiringEvent,
    TokenGameTrace,
    circuit_invariants,
    play_token_game,
    verify_invariant_during_game,
)
from .net import Place, PlaceKind, TimedEventGraph, Transition
from .reduction import (
    CommPattern,
    CompColumn,
    column_subgraph,
    comm_patterns,
    computation_column,
)
from .serialization import tpn_from_dict, tpn_from_json, tpn_to_dict, tpn_to_json
from .validate import TpnReport, validate_tpn

__all__ = [
    "TimedEventGraph",
    "Transition",
    "Place",
    "PlaceKind",
    "build_tpn",
    "DEFAULT_MAX_ROWS",
    "validate_tpn",
    "TpnReport",
    "CommPattern",
    "CompColumn",
    "comm_patterns",
    "computation_column",
    "column_subgraph",
    "play_token_game",
    "TokenGameTrace",
    "FiringEvent",
    "circuit_invariants",
    "verify_invariant_during_game",
    "tpn_to_dict",
    "tpn_from_dict",
    "tpn_to_json",
    "tpn_from_json",
]
