"""Token-game semantics: play the timed Petri net marking by marking.

This module implements the *operational* semantics of the nets — tokens
consumed when a transition starts firing, produced when it completes —
as an event-driven simulation with a priority queue.  It is deliberately
independent from the max-plus dater recursion of
:mod:`repro.simulation.event_sim`: the two implementations must produce
identical firing times (property-tested), which validates both against
implementation bugs.

It also exposes the structural *place invariants*: every round-robin
circuit of the paper's construction is a P-semiflow — the number of
tokens on the circuit plus the number of its transitions currently
firing is constantly one ("any resource processes at most one job at a
time", Figure 3's caption).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from ..errors import DeadlockError, SimulationError
from .net import PlaceKind, TimedEventGraph

__all__ = ["FiringEvent", "TokenGameTrace", "play_token_game", "circuit_invariants"]


@dataclass(frozen=True)
class FiringEvent:
    """One firing in the token game.

    Attributes
    ----------
    transition:
        Transition index.
    count:
        Which firing of that transition (0-based).
    start, end:
        Firing interval (``end - start`` is the duration).
    """

    transition: int
    count: int
    start: float
    end: float


@dataclass
class TokenGameTrace:
    """Chronological firing log of a token-game run."""

    net: TimedEventGraph
    events: list[FiringEvent] = field(default_factory=list)

    def completion_matrix(self, n_firings: int) -> np.ndarray:
        """Completion times shaped like ``SimulationTrace.completion``.

        Raises if some transition fired fewer than ``n_firings`` times.
        """
        out = np.full((n_firings, self.net.n_transitions), np.nan)
        for ev in self.events:
            if ev.count < n_firings:
                out[ev.count, ev.transition] = ev.end
        if np.any(np.isnan(out)):
            raise SimulationError(
                "token game did not complete the requested firings for "
                "every transition"
            )
        return out


def play_token_game(net: TimedEventGraph, n_firings: int) -> TokenGameTrace:
    """Run the timed token game under earliest-firing semantics.

    At every event instant, all enabled transitions start firing
    simultaneously (consuming one token from each input place); each
    completion (after the transition's duration) returns tokens to the
    output places and may enable further transitions.

    Because the nets are event graphs with one token per circuit, a
    transition is never multiply-enabled at one instant, which keeps the
    game deterministic.
    """
    if n_firings < 1:
        raise SimulationError("n_firings must be >= 1")
    n = net.n_transitions
    marking = np.array([p.tokens for p in net.places], dtype=np.int64)
    in_places: list[list[int]] = [[] for _ in range(n)]
    out_places: list[list[int]] = [[] for _ in range(n)]
    for p in net.places:
        in_places[p.dst].append(p.index)
        out_places[p.src].append(p.index)

    fired = np.zeros(n, dtype=np.int64)
    durations = np.array([t.duration for t in net.transitions])

    def enabled(t: int) -> bool:
        return all(marking[p] >= 1 for p in in_places[t])

    events: list[FiringEvent] = []
    heap: list[tuple[float, int, int]] = []  # (end_time, seq, transition)
    seq = itertools.count()

    def start_enabled(now: float) -> None:
        progress = True
        while progress:
            progress = False
            for t in range(n):
                if fired[t] + sum(1 for e in heap if e[2] == t) >= n_firings:
                    continue
                if enabled(t):
                    for p in in_places[t]:
                        marking[p] -= 1
                    heapq.heappush(heap, (now + durations[t], next(seq), t))
                    progress = True

    start_enabled(0.0)
    if not heap:
        raise DeadlockError("no transition is initially enabled")
    while heap:
        now, _, t = heapq.heappop(heap)
        events.append(FiringEvent(t, int(fired[t]), now - durations[t], now))
        fired[t] += 1
        for p in out_places[t]:
            marking[p] += 1
        # complete everything that ends at the same instant first
        while heap and heap[0][0] == now:
            now2, _, t2 = heapq.heappop(heap)
            events.append(FiringEvent(t2, int(fired[t2]), now2 - durations[t2], now2))
            fired[t2] += 1
            for p in out_places[t2]:
                marking[p] += 1
        start_enabled(now)

    if np.any(fired < n_firings):
        raise DeadlockError(
            "token game deadlocked before completing the requested firings"
        )
    events.sort(key=lambda e: (e.end, e.transition))
    return TokenGameTrace(net=net, events=events)


def circuit_invariants(net: TimedEventGraph) -> dict[str, list[int]]:
    """The P-semiflows of the construction: places of each circuit.

    Returns a map ``resource-circuit-key -> place indices``.  The
    invariant (checked by :func:`verify_invariant_during_game`) is that
    the circuit's token count plus its in-flight firings is always 1.
    """
    circuits: dict[str, list[int]] = {}
    for p in net.places:
        if p.kind == PlaceKind.FLOW:
            continue
        circuits.setdefault(f"{p.kind}:{p.resource}", []).append(p.index)
    return circuits


def verify_invariant_during_game(
    net: TimedEventGraph, trace: TokenGameTrace
) -> None:
    """Check the one-token-per-circuit invariant over a whole game run.

    For each circuit and each event boundary: (tokens on the circuit's
    places) + (circuit transitions currently firing) == 1.  Raises
    :class:`SimulationError` on violation.
    """
    circuits = circuit_invariants(net)
    # circuit -> transitions it serializes (the dst of its places)
    members: dict[str, set[int]] = {
        key: {net.places[p].dst for p in places} | {net.places[p].src for p in places}
        for key, places in circuits.items()
    }
    # Sample instants strictly between consecutive event times.
    times = sorted({ev.start for ev in trace.events} | {ev.end for ev in trace.events})
    probes = [(a + b) / 2 for a, b in zip(times, times[1:]) if b > a]
    for key, places in circuits.items():
        trans = members[key]
        for instant in probes:
            in_flight = sum(
                1 for ev in trace.events
                if ev.transition in trans and ev.start < instant < ev.end
            )
            # tokens = initial (1) - started + completed among circuit places'
            # bookkeeping; equivalently 1 - in_flight must be >= 0 and the
            # invariant is in_flight <= 1.
            if in_flight > 1:
                raise SimulationError(
                    f"circuit {key} has {in_flight} simultaneous firings "
                    f"at t={instant}: the one-token invariant is violated"
                )
