"""Graphviz (DOT) export of workflow TPNs (Figures 4, 5, 8, 10).

Produces plain DOT text — no graphviz dependency is needed to *generate*
it; render with ``dot -Tpdf net.dot -o net.pdf`` wherever graphviz is
available.  Layout mirrors the paper's figures: one horizontal rank per
TPN row, transitions as boxes labelled with their stage/processor, places
drawn as edges (tokenized places with a filled dot marker), and an
optional critical cycle highlighted in red (Figure 8).
"""

from __future__ import annotations

from collections.abc import Collection

from .net import PlaceKind, TimedEventGraph

__all__ = ["tpn_to_dot", "pattern_to_dot"]

_KIND_COLORS = {
    PlaceKind.FLOW: "black",
    PlaceKind.RR_COMP: "blue",
    PlaceKind.RR_OUT: "darkgreen",
    PlaceKind.RR_IN: "purple",
    PlaceKind.RCS: "orange",
}


def tpn_to_dot(
    net: TimedEventGraph,
    highlight: Collection[int] = (),
    title: str | None = None,
) -> str:
    """Render a net to DOT.

    Parameters
    ----------
    net:
        The timed event graph.
    highlight:
        Transition indices to emphasize (e.g. a critical cycle from
        :class:`~repro.algorithms.general_tpn.TpnSolution`); the induced
        places between consecutive highlighted transitions are also
        reddened.
    title:
        Optional graph label.
    """
    hi = set(highlight)
    lines = [
        "digraph tpn {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="Helvetica"];',
        "  edge [fontsize=8];",
    ]
    if title:
        lines.append(f'  label="{title}"; labelloc=t;')

    for row in range(net.n_rows):
        members = []
        for col in range(net.n_columns):
            t = net.transition_at(row, col)
            color = ', color=red, penwidth=2' if t.index in hi else ""
            label = t.label.replace(f" [row {row}]", "")
            lines.append(
                f'  t{t.index} [label="{label}\\n{t.duration:g}"{color}];'
            )
            members.append(f"t{t.index}")
        lines.append(f"  {{ rank=same; {'; '.join(members)} }}")

    for p in net.places:
        color = _KIND_COLORS.get(p.kind, "black")
        attrs = [f"color={color}"]
        if p.src in hi and p.dst in hi:
            attrs = ["color=red", "penwidth=2"]
        if p.tokens:
            attrs.append('label="&#9679;"')  # filled-dot token marker
            attrs.append("style=bold")
        lines.append(f"  t{p.src} -> t{p.dst} [{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines)


def pattern_to_dot(pattern, title: str | None = None) -> str:
    """Render a Theorem-1 pattern graph ``G'`` to DOT (Figure 14).

    ``pattern`` is a :class:`~repro.petri.reduction.CommPattern`; cells are
    laid out on the ``u x v`` grid with wrap-around edges dashed.
    """
    u, v = pattern.u, pattern.v
    lines = [
        "digraph pattern {",
        '  node [shape=box, fontsize=10, fontname="Helvetica"];',
    ]
    if title:
        lines.append(f'  label="{title}"; labelloc=t;')
    for a in range(u):
        for b in range(v):
            s, r = pattern.cell_pair(a, b)
            lines.append(
                f'  c{a}_{b} [label="P{s}&rarr;P{r}\\n{pattern.durations[a, b]:g}"];'
            )
    for a in range(u):
        lines.append(
            "  { rank=same; " + "; ".join(f"c{a}_{b}" for b in range(v)) + " }"
        )
    for a in range(u):
        for b in range(v):
            down_wrap = a == u - 1
            right_wrap = b == v - 1
            down_style = 'style=dashed, label="&#9679;"' if down_wrap else ""
            right_style = 'style=dashed, label="&#9679;"' if right_wrap else ""
            lines.append(f"  c{a}_{b} -> c{(a + 1) % u}_{b} [{down_style}];")
            lines.append(f"  c{a}_{b} -> c{a}_{(b + 1) % v} [{right_style}];")
    lines.append("}")
    return "\n".join(lines)
