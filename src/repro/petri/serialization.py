"""TPN interchange: dict / JSON round-trips.

Lets nets be saved, diffed and reloaded — useful for regression-pinning
a constructed net (the test-suite pins Example A's structure) and for
feeding external Petri-net tooling from the JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ValidationError
from ..utils import canonical_json
from .net import TimedEventGraph

__all__ = ["tpn_to_dict", "tpn_from_dict", "tpn_to_json", "tpn_from_json"]

_FORMAT = "repro-tpn-v1"


def tpn_to_dict(net: TimedEventGraph) -> dict:
    """Plain-data representation of a net (format ``repro-tpn-v1``)."""
    return {
        "format": _FORMAT,
        "n_rows": net.n_rows,
        "n_columns": net.n_columns,
        "meta": dict(net.meta),
        "transitions": [
            {
                "row": t.row,
                "column": t.column,
                "duration": t.duration,
                "kind": t.kind,
                "stage_or_file": t.stage_or_file,
                "procs": list(t.procs),
            }
            for t in net.transitions
        ],
        "places": [
            {
                "src": p.src,
                "dst": p.dst,
                "tokens": p.tokens,
                "kind": p.kind,
                "resource": p.resource,
            }
            for p in net.places
        ],
    }


def tpn_from_dict(data: dict) -> TimedEventGraph:
    """Inverse of :func:`tpn_to_dict` (validates the format tag)."""
    if data.get("format") != _FORMAT:
        raise ValidationError(
            f"unknown TPN format {data.get('format')!r}; expected {_FORMAT!r}"
        )
    net = TimedEventGraph(n_rows=int(data["n_rows"]),
                          n_columns=int(data["n_columns"]))
    net.meta.update(data.get("meta", {}))
    for t in data["transitions"]:
        net.add_transition(
            int(t["row"]), int(t["column"]), float(t["duration"]),
            str(t["kind"]), int(t["stage_or_file"]),
            tuple(int(u) for u in t["procs"]),
        )
    for p in data["places"]:
        net.add_place(
            int(p["src"]), int(p["dst"]), int(p["tokens"]),
            str(p["kind"]), str(p.get("resource", "")),
        )
    return net


def tpn_to_json(net: TimedEventGraph, path: str | Path | None = None,
                indent: int = 2) -> str:
    """Serialize to JSON; also writes ``path`` when given."""
    # meta may contain tuples; normalize for JSON
    data = tpn_to_dict(net)
    data["meta"] = {
        k: (list(v) if isinstance(v, tuple) else v)
        for k, v in data["meta"].items()
    }
    # Canonical bytes (sorted keys, repr floats): equal nets serialize
    # to equal files, so exported TPNs diff and digest cleanly.
    text = canonical_json(data, indent=indent)
    if path is not None:
        Path(path).write_text(text)
    return text


def tpn_from_json(source: str | Path) -> TimedEventGraph:
    """Load a net from a JSON string or file path."""
    if isinstance(source, Path):
        text = source.read_text()
    else:
        text = str(source)
        if "\n" not in text and text.endswith(".json"):
            text = Path(text).read_text()
    return tpn_from_dict(json.loads(text))
