"""TPN construction for both communication models (Sections 3.2 and 3.3).

The construction is ``O(m n)`` in the size of the produced net, with
``m = lcm(m_0, ..., m_{n-1})`` rows and ``2n - 1`` columns:

* **row places** (both models, Figure 3a): within row ``j``,
  ``T^j_{2i} -> T^j_{2i+1} -> T^j_{2i+2}`` — a file cannot be sent before
  it is computed, a stage cannot start before its input file arrives;
* **OVERLAP ONE-PORT** (Figures 3b-3d): for every resource (CPU, output
  port, input port) a round-robin circuit chains, in increasing row
  order, all transitions of the column where that resource appears; the
  wrap-around place carries the single token — a resource serves one data
  set at a time and in round-robin order;
* **STRICT ONE-PORT** (Figure 5a): one circuit per *processor* chaining
  ``send(row j_l) -> receive(row j_{l+1})`` — the next reception starts
  only after the current receive/compute/send sequence completed.  For
  first (resp. last) stage processors the circuit enters at the
  computation (resp. exits at the computation).

Since ``m`` can grow multiplicatively (Example C: ``m = 10395``), the
builder enforces a configurable row budget and raises
:class:`~repro.errors.ReplicationExplosionError` beyond it.
"""

from __future__ import annotations

from ..core.instance import Instance
from ..core.models import CommModel
from ..errors import ReplicationExplosionError
from .net import PlaceKind, TimedEventGraph

__all__ = ["build_tpn", "DEFAULT_MAX_ROWS"]

#: Default budget on the number of TPN rows (``m = lcm(m_i)``).
DEFAULT_MAX_ROWS = 20_000


def build_tpn(
    inst: Instance,
    model: CommModel | str,
    max_rows: int | None = DEFAULT_MAX_ROWS,
) -> TimedEventGraph:
    """Build the timed Petri net of a mapped instance.

    Parameters
    ----------
    inst:
        The validated problem instance.
    model:
        Communication model (``"overlap"`` or ``"strict"``).
    max_rows:
        Budget on ``m = lcm(m_i)``; ``None`` disables the check.

    Returns
    -------
    TimedEventGraph
        The net, with ``meta`` recording the model and dimensions.

    Examples
    --------
    Example A of the paper yields a 6-row, 7-column net:

    >>> from repro.experiments.examples_paper import example_a
    >>> net = build_tpn(example_a(), "overlap")
    >>> (net.n_rows, net.n_columns, net.n_transitions)
    (6, 7, 42)
    """
    model = CommModel.parse(model)
    mapping = inst.mapping
    n = inst.n_stages
    m = mapping.num_paths
    if max_rows is not None and m > max_rows:
        raise ReplicationExplosionError(m, max_rows)

    n_cols = 2 * n - 1
    net = TimedEventGraph(n_rows=m, n_columns=n_cols)
    net.meta.update(
        model=model.value,
        n_stages=n,
        m=m,
        replication=mapping.replication_counts,
    )

    # ------------------------------------------------------------------
    # transitions, row-major
    # ------------------------------------------------------------------
    for j in range(m):
        for c in range(n_cols):
            i = c // 2
            if c % 2 == 0:
                u = mapping.processor_for(i, j)
                net.add_transition(
                    j, c, inst.comp_time(i, u), "comp", i, (u,)
                )
            else:
                u = mapping.processor_for(i, j)
                v = mapping.processor_for(i + 1, j)
                net.add_transition(
                    j, c, inst.comm_time(i, u, v), "comm", i, (u, v)
                )

    tid = lambda row, col: row * n_cols + col  # noqa: E731 - local shorthand

    # ------------------------------------------------------------------
    # constraint 1: row-internal flow places (both models)
    # ------------------------------------------------------------------
    for j in range(m):
        for c in range(n_cols - 1):
            net.add_place(tid(j, c), tid(j, c + 1), 0, PlaceKind.FLOW)

    def circuit(rows: list[int], col_out: int, col_in: int, kind: str, resource: str) -> None:
        """Round-robin circuit: (rows[l], col_out) -> (rows[l+1], col_in).

        The wrap-around place (last row back to the first) carries the
        single token: the resource is initially free.
        """
        k = len(rows)
        for idx in range(k):
            src_row = rows[idx]
            dst_row = rows[(idx + 1) % k]
            tokens = 1 if idx == k - 1 else 0
            net.add_place(tid(src_row, col_out), tid(dst_row, col_in), tokens, kind, resource)

    # ------------------------------------------------------------------
    # round-robin circuits
    # ------------------------------------------------------------------
    for i in range(n):
        procs = mapping.processors_of(i)
        m_i = len(procs)
        for r, u in enumerate(procs):
            rows = list(range(r, m, m_i))
            if model.overlap:
                # constraint 2: CPU round-robin
                circuit(rows, 2 * i, 2 * i, PlaceKind.RR_COMP, f"P{u}:comp")
                # constraint 3: output-port round-robin
                if i < n - 1:
                    circuit(rows, 2 * i + 1, 2 * i + 1, PlaceKind.RR_OUT, f"P{u}:out")
                # constraint 4: input-port round-robin
                if i > 0:
                    circuit(rows, 2 * i - 1, 2 * i - 1, PlaceKind.RR_IN, f"P{u}:in")
            else:
                # strict: one receive->compute->send serialization circuit.
                col_first = 2 * i - 1 if i > 0 else 2 * i
                col_last = 2 * i + 1 if i < n - 1 else 2 * i
                circuit(rows, col_last, col_first, PlaceKind.RCS, f"P{u}")

    return net
