"""Column decomposition and pattern graphs (Theorem 1, Appendix A).

Under OVERLAP ONE-PORT every cycle of the TPN stays inside one *column*
(computations of one stage, or transmissions of one file): inter-row
places never leave their column and row places only move forward.  The
period is therefore the maximum over per-column critical ratios — and
each column admits a polynomial-size quotient:

* a **computation column** for stage ``S_i`` splits into ``m_i``
  disjoint circuits (one per replica); the critical one is the slowest
  processor, contributing ``max_u (w_i / Pi_u) / m_i`` per data set;
* a **communication column** for file ``F_i`` with ``a = m_i`` senders
  and ``b = m_{i+1}`` receivers splits into ``p = gcd(a, b)`` connected
  components; each component is ``c = m / lcm(a, b)`` copies of a
  ``u x v`` *pattern* (``u = a/p``, ``v = b/p``) and its critical ratio
  equals the pattern-graph ratio — computed on ``u*v`` nodes no matter
  how large ``m`` is.  The per-data-set contribution is
  ``max-cycle-ratio(pattern) / lcm(a, b)``.

Pattern graph layout (Figure 14): cell ``(alpha, beta)`` is the class of
transmissions of data sets ``j ≡ g + alpha*b + beta*a (mod lcm(a, b))``,
i.e. sender ``P_{i, (g + alpha*b) mod a}`` and receiver
``P_{i+1, (g + beta*a) mod b}``.  The *down* edge (same receiver, its next
round-robin reception) and the *right* edge (same sender, its next
round-robin transmission) wrap around with one token — exactly the
single-pattern graph ``G'`` of the appendix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..maxplus.cycle_ratio import max_cycle_ratio
from ..maxplus.graph import RatioGraph
from .net import PlaceKind, TimedEventGraph

__all__ = [
    "CompColumn",
    "CommPattern",
    "computation_column",
    "comm_patterns",
    "column_subgraph",
]


@dataclass(frozen=True)
class CompColumn:
    """Critical-ratio summary of a computation column.

    Attributes
    ----------
    stage:
        Stage index ``i``.
    per_processor:
        ``(proc, w_i / Pi_u)`` pairs for every replica.
    contribution:
        Per-data-set period contribution ``max_u (w_i / Pi_u) / m_i``.
    critical_proc:
        Replica attaining the maximum.
    """

    stage: int
    per_processor: tuple[tuple[int, float], ...]
    contribution: float
    critical_proc: int


@dataclass(frozen=True)
class CommPattern:
    """Pattern graph ``G'`` of one connected component of a file column.

    Attributes
    ----------
    file_index:
        File ``F_i``.
    component:
        Component id ``g`` in ``[0, p)``.
    p, u, v, window:
        Decomposition constants: ``p = gcd(m_i, m_{i+1})`` components of
        ``u x v`` cells; ``window = lcm(m_i, m_{i+1})``; with ``c = m /
        window`` pattern repetitions inside the full column (Figure 13).
    senders:
        Processor of each pattern row, in receiver-round-robin order.
    receivers:
        Processor of each pattern column, in sender-round-robin order.
    durations:
        ``u x v`` array: transfer time from ``senders[alpha]`` to
        ``receivers[beta]``.
    """

    file_index: int
    component: int
    p: int
    u: int
    v: int
    window: int
    senders: tuple[int, ...]
    receivers: tuple[int, ...]
    durations: np.ndarray

    def to_ratio_graph(self) -> RatioGraph:
        """The torus graph ``G'``: down/right edges, tokens on wrap arcs."""
        u, v = self.u, self.v
        cell = lambda a, b: a * v + b  # noqa: E731 - local shorthand
        edges = []
        for a in range(u):
            for b in range(v):
                w = float(self.durations[a, b])
                edges.append((cell(a, b), cell((a + 1) % u, b), w, 1 if a == u - 1 else 0))
                edges.append((cell(a, b), cell(a, (b + 1) % v), w, 1 if b == v - 1 else 0))
        return RatioGraph(u * v, edges)

    def critical_ratio(self) -> float:
        """Maximum cycle ratio of the pattern graph (TPN time units)."""
        return max_cycle_ratio(self.to_ratio_graph()).value

    def contribution(self) -> float:
        """Per-data-set period contribution of this component."""
        return self.critical_ratio() / self.window

    def cell_pair(self, alpha: int, beta: int) -> tuple[int, int]:
        """(sender, receiver) processors of pattern cell ``(alpha, beta)``."""
        return self.senders[alpha], self.receivers[beta]


def computation_column(inst: Instance, stage: int) -> CompColumn:
    """Critical-ratio summary of the computation column of ``stage``."""
    procs = inst.mapping.processors_of(stage)
    per_proc = tuple((u, inst.comp_time(stage, u)) for u in procs)
    crit_proc, crit_time = max(per_proc, key=lambda x: x[1])
    return CompColumn(
        stage=stage,
        per_processor=per_proc,
        contribution=crit_time / len(procs),
        critical_proc=crit_proc,
    )


def comm_patterns(inst: Instance, file_index: int) -> list[CommPattern]:
    """Pattern graphs of every connected component of file ``F_i``'s column.

    Examples
    --------
    Example C of the paper (``m_1 = 21`` senders, ``m_2 = 27`` receivers
    for file ``F_1``) decomposes into 3 components of 7x9 patterns:

    >>> from repro.experiments.examples_paper import example_c
    >>> pats = comm_patterns(example_c(), 1)
    >>> [(pat.p, pat.u, pat.v) for pat in pats]
    [(3, 7, 9), (3, 7, 9), (3, 7, 9)]
    """
    mapping = inst.mapping
    p, u, v, window = mapping.comm_structure(file_index)
    senders_all = mapping.processors_of(file_index)
    receivers_all = mapping.processors_of(file_index + 1)
    a, b = len(senders_all), len(receivers_all)

    out: list[CommPattern] = []
    for g in range(p):
        senders = tuple(senders_all[(g + alpha * b) % a] for alpha in range(u))
        receivers = tuple(receivers_all[(g + beta * a) % b] for beta in range(v))
        durations = np.empty((u, v))
        for alpha, s in enumerate(senders):
            for beta, r in enumerate(receivers):
                durations[alpha, beta] = inst.comm_time(file_index, s, r)
        durations.setflags(write=False)
        out.append(
            CommPattern(
                file_index=file_index,
                component=g,
                p=p,
                u=u,
                v=v,
                window=window,
                senders=senders,
                receivers=receivers,
                durations=durations,
            )
        )
    return out


def column_subgraph(
    net: TimedEventGraph, column: int
) -> tuple[RatioGraph, list[int]]:
    """Extract one column of a built OVERLAP net as a standalone graph.

    Returns the induced :class:`RatioGraph` over the column's transitions
    (in row order) and the list of original transition indices.  Only the
    column-internal places (the round-robin circuits) are kept — under the
    OVERLAP model these are exactly the places of every cycle through the
    column, so the sub-graph's maximum cycle ratio (divided by ``m``) is
    the column's period contribution.  This is the object drawn in
    Figures 9 and 10 of the paper.
    """
    trans = net.column_transitions(column)
    ids = [t.index for t in trans]
    remap = {t: i for i, t in enumerate(ids)}
    edges = []
    for p in net.places:
        if p.kind == PlaceKind.FLOW:
            continue
        if p.src in remap and p.dst in remap:
            edges.append(
                (remap[p.src], remap[p.dst], net.transitions[p.src].duration, p.tokens)
            )
    return RatioGraph(len(ids), edges), ids
