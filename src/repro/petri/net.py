"""Timed event graph data structure for workflow TPN models (Section 3).

The nets built by :mod:`repro.petri.builder` have the *event graph*
property: every place has exactly one input and one output transition.
Transitions carry firing durations; places carry token counts.  The net
is laid out as a matrix of ``m`` rows (one per round-robin path) by
``2n - 1`` columns (computations at even columns, file transmissions at
odd columns) exactly as in the paper.

Period extraction reduces the net to a :class:`~repro.maxplus.graph.RatioGraph`
whose nodes are transitions and whose edges are places, with edge weight
equal to the duration of the place's *input* transition — so a cycle's
weight is the sum of its transitions' durations, and the maximum cycle
ratio is the paper's ``max_C L(C)/t(C)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ValidationError
from ..maxplus.graph import RatioGraph

__all__ = ["Transition", "Place", "TimedEventGraph", "PlaceKind"]


class PlaceKind:
    """Constraint classes of the paper's construction (Section 3.2/3.3)."""

    #: Row-internal precedence: computation -> send -> next computation.
    FLOW = "flow"
    #: Round-robin circuit of a CPU (overlap model, constraint 2).
    RR_COMP = "rr_comp"
    #: Round-robin circuit of an output port (overlap model, constraint 3).
    RR_OUT = "rr_out"
    #: Round-robin circuit of an input port (overlap model, constraint 4).
    RR_IN = "rr_in"
    #: Receive -> compute -> send serialization circuit (strict model).
    RCS = "rcs"

    ALL = (FLOW, RR_COMP, RR_OUT, RR_IN, RCS)


@dataclass(frozen=True)
class Transition:
    """One TPN transition.

    Attributes
    ----------
    index:
        Dense transition id, ``row * (2n - 1) + column``.
    row, column:
        Matrix position; even columns are computations of stage
        ``column // 2``, odd columns transmissions of file ``column // 2``.
    duration:
        Firing time (``w_i / Pi_u`` or ``delta_i / b_{u,v}``).
    kind:
        ``"comp"`` or ``"comm"``.
    stage_or_file:
        Stage index for computations, file index for transmissions.
    procs:
        ``(u,)`` for a computation on ``P_u``; ``(u, v)`` for a
        transmission ``P_u -> P_v``.
    """

    index: int
    row: int
    column: int
    duration: float
    kind: str
    stage_or_file: int
    procs: tuple[int, ...]

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``S1/P2 [row 3]`` or ``F0:P0->P2``."""
        if self.kind == "comp":
            return f"S{self.stage_or_file}/P{self.procs[0]} [row {self.row}]"
        return f"F{self.stage_or_file}:P{self.procs[0]}->P{self.procs[1]} [row {self.row}]"

    def resources(self, overlap: bool) -> tuple[str, ...]:
        """Hardware resources this transition occupies while firing.

        Under the OVERLAP model a transmission occupies the sender's output
        port and the receiver's input port; a computation occupies the CPU.
        Under the STRICT model all three activities of a processor occupy
        the *whole* processor.
        """
        if self.kind == "comp":
            return (f"P{self.procs[0]}:comp",) if overlap else (f"P{self.procs[0]}",)
        u, v = self.procs
        if overlap:
            return (f"P{u}:out", f"P{v}:in")
        return (f"P{u}", f"P{v}")


@dataclass(frozen=True)
class Place:
    """One TPN place: an edge ``src -> dst`` holding ``tokens`` tokens."""

    index: int
    src: int
    dst: int
    tokens: int
    kind: str
    #: Owning resource for round-robin circuits (e.g. ``"P0:out"``), empty
    #: for flow places.
    resource: str = ""


@dataclass
class TimedEventGraph:
    """A timed Petri net with the event-graph property.

    Built by :func:`repro.petri.builder.build_tpn`; can also be assembled
    manually for tests.  ``meta`` carries provenance (model, instance
    dimensions) used by reports.
    """

    n_rows: int
    n_columns: int
    transitions: list[Transition] = field(default_factory=list)
    places: list[Place] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_transition(
        self,
        row: int,
        column: int,
        duration: float,
        kind: str,
        stage_or_file: int,
        procs: tuple[int, ...],
    ) -> Transition:
        """Append a transition at a fixed matrix position."""
        expected = row * self.n_columns + column
        if len(self.transitions) != expected:
            raise ValidationError(
                f"transitions must be added in row-major order: expected "
                f"index {len(self.transitions)}, got position ({row}, {column})"
            )
        t = Transition(expected, row, column, float(duration), kind, stage_or_file, procs)
        self.transitions.append(t)
        return t

    def add_place(
        self, src: int, dst: int, tokens: int, kind: str, resource: str = ""
    ) -> Place:
        """Append a place (an edge between two existing transitions)."""
        n = len(self.transitions)
        if not (0 <= src < n and 0 <= dst < n):
            raise ValidationError(f"place ({src} -> {dst}) references missing transitions")
        if kind not in PlaceKind.ALL:
            raise ValidationError(f"unknown place kind {kind!r}")
        p = Place(len(self.places), int(src), int(dst), int(tokens), kind, resource)
        self.places.append(p)
        return p

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_transitions(self) -> int:
        """Number of transitions (``m * (2n - 1)`` for built nets)."""
        return len(self.transitions)

    @property
    def n_places(self) -> int:
        """Number of places."""
        return len(self.places)

    def transition_at(self, row: int, column: int) -> Transition:
        """Transition at matrix position ``(row, column)``."""
        if not (0 <= row < self.n_rows and 0 <= column < self.n_columns):
            raise IndexError(f"position ({row}, {column}) outside {self.n_rows}x{self.n_columns}")
        return self.transitions[row * self.n_columns + column]

    def column_transitions(self, column: int) -> list[Transition]:
        """All transitions of one column, in row order."""
        return [self.transition_at(r, column) for r in range(self.n_rows)]

    def places_by_kind(self, kind: str) -> list[Place]:
        """All places of one constraint class."""
        return [p for p in self.places if p.kind == kind]

    def total_tokens(self) -> int:
        """Total initial marking (one token per round-robin circuit)."""
        return sum(p.tokens for p in self.places)

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_ratio_graph(self) -> RatioGraph:
        """Reduce to the cycle-ratio graph (nodes = transitions).

        Edge weight is the duration of the place's input transition so
        cycle weights equal the summed durations of traversed transitions.
        """
        edges = (
            (p.src, p.dst, self.transitions[p.src].duration, p.tokens)
            for p in self.places
        )
        return RatioGraph(self.n_transitions, edges)

    def place_edges(self) -> Iterable[tuple[int, int, int]]:
        """Iterate ``(src, dst, tokens)`` triples (structure only)."""
        for p in self.places:
            yield p.src, p.dst, p.tokens

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimedEventGraph({self.n_rows}x{self.n_columns}, "
            f"{self.n_transitions} transitions, {self.n_places} places, "
            f"model={self.meta.get('model', '?')})"
        )
