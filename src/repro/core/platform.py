"""Platform model: heterogeneous processors and links (Section 2).

The target platform has ``p`` processors.  Processor ``P_u`` has speed
``Pi_u`` (FLOP per time unit) and every ordered pair ``(P_u, P_v)`` is
joined by a (possibly logical) bidirectional link of bandwidth ``b_{u,v}``
bytes per time unit — e.g. a star-shaped physical network where every
processor reaches every other one through a central switch.

Time to process ``S_k`` on ``P_u``: ``w_k / Pi_u``.
Time to ship ``F_i`` from ``P_u`` to ``P_v``: ``delta_i / b_{u,v}``.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np
import numpy.typing as npt

from ..errors import ValidationError

__all__ = ["Platform"]


class Platform:
    """A fully connected heterogeneous platform.

    Parameters
    ----------
    speeds:
        Processor speeds ``Pi_u`` (FLOP / time unit), length ``p``.
        Every speed must be finite and positive.
    bandwidths:
        ``p x p`` matrix of link bandwidths (bytes / time unit).
        ``bandwidths[u, v]`` is the bandwidth of the link ``P_u -> P_v``.
        Off-diagonal entries must be positive (``math.inf`` is allowed and
        models an infinitely fast link, i.e. zero communication time).
        The diagonal is ignored — a processor never sends a file to itself
        because it executes at most one stage.
    name:
        Optional label used in reports.
    failure_rates:
        Optional per-processor failure probabilities in ``[0, 1)``: the
        probability that ``P_u`` fails while handling one data set
        (Benoit, Rehn-Sonigo & Robert's multi-criteria model).  ``None``
        (the default) means the platform carries no failure model and
        every mapping has reliability 1 — the paper's original,
        reliability-free setting.

    Examples
    --------
    >>> plat = Platform(speeds=[1.0, 2.0], bandwidths=[[0, 5.0], [5.0, 0]])
    >>> plat.comp_time(work=10.0, proc=1)
    5.0
    >>> plat.comm_time(size=10.0, src=0, dst=1)
    2.0
    """

    __slots__ = ("speeds", "bandwidths", "name", "failure_rates")

    def __init__(
        self,
        speeds: Sequence[float],
        bandwidths: Sequence[Sequence[float]] | npt.NDArray[np.float64],
        name: str = "platform",
        failure_rates: Sequence[float] | None = None,
    ) -> None:
        speeds_arr = np.asarray(speeds, dtype=float)
        if speeds_arr.ndim != 1 or speeds_arr.size < 1:
            raise ValidationError("speeds must be a non-empty 1-D sequence")
        if not np.all(np.isfinite(speeds_arr)) or np.any(speeds_arr <= 0):
            raise ValidationError("every processor speed must be finite and > 0")

        bw = np.asarray(bandwidths, dtype=float)
        p = speeds_arr.size
        if bw.shape != (p, p):
            raise ValidationError(
                f"bandwidths must be a {p}x{p} matrix to match {p} "
                f"processors, got shape {bw.shape}"
            )
        off_diag = ~np.eye(p, dtype=bool)
        bad = off_diag & ~((bw > 0) | np.isinf(bw))
        if np.any(np.isnan(bw[off_diag])) or np.any(bad):
            raise ValidationError(
                "every off-diagonal bandwidth must be positive (or inf)"
            )

        #: Processor speeds, shape ``(p,)``.
        self.speeds = speeds_arr
        self.speeds.setflags(write=False)
        #: Link bandwidth matrix, shape ``(p, p)``.
        self.bandwidths = bw
        self.bandwidths.setflags(write=False)
        #: Label used in reports.
        self.name = str(name)
        #: Optional per-processor failure probabilities, shape ``(p,)``.
        if failure_rates is None:
            self.failure_rates: npt.NDArray[np.float64] | None = None
        else:
            fr = np.asarray(failure_rates, dtype=float)
            if fr.shape != (p,):
                raise ValidationError(
                    f"failure_rates must have one entry per processor "
                    f"({p}), got shape {fr.shape}"
                )
            if not np.all(np.isfinite(fr)) or np.any(fr < 0) or np.any(fr >= 1):
                raise ValidationError(
                    "every failure rate must be a probability in [0, 1)"
                )
            self.failure_rates = fr
            self.failure_rates.setflags(write=False)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_processors(self) -> int:
        """Number of processors ``p``."""
        return int(self.speeds.size)

    def speed(self, u: int) -> float:
        """Speed ``Pi_u`` of processor ``P_u``."""
        return float(self.speeds[self._check(u)])

    def bandwidth(self, u: int, v: int) -> float:
        """Bandwidth ``b_{u,v}`` of the link ``P_u -> P_v`` (``u != v``)."""
        u, v = self._check(u), self._check(v)
        if u == v:
            raise ValidationError(
                f"no link P{u} -> P{u}: a processor executes at most one "
                f"stage so it never ships a file to itself"
            )
        return float(self.bandwidths[u, v])

    def failure_rate(self, u: int) -> float:
        """Failure probability of ``P_u`` per data set (0 when unmodelled)."""
        if self.failure_rates is None:
            return 0.0
        return float(self.failure_rates[self._check(u)])

    def comp_time(self, work: float, proc: int) -> float:
        """Time to execute ``work`` FLOP on processor ``proc``."""
        return float(work) / self.speed(proc)

    def comm_time(self, size: float, src: int, dst: int) -> float:
        """Time to ship ``size`` bytes from ``src`` to ``dst``.

        Returns ``0.0`` for infinitely fast links even when ``size`` is 0
        (``0/inf`` is well-defined).
        """
        b = self.bandwidth(src, dst)
        if math.isinf(b):
            return 0.0
        return float(size) / b

    def _check(self, u: int) -> int:
        u = int(u)
        if not 0 <= u < self.n_processors:
            raise IndexError(
                f"processor index {u} out of range [0, {self.n_processors})"
            )
        return u

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls, n: int, speed: float = 1.0, bandwidth: float = 1.0, name: str = "homogeneous"
    ) -> "Platform":
        """Platform with ``n`` identical processors and identical links."""
        bw = np.full((n, n), float(bandwidth))
        np.fill_diagonal(bw, 0.0)
        return cls([float(speed)] * n, bw, name=name)

    @classmethod
    def star(
        cls,
        speeds: Sequence[float],
        up_bandwidths: Sequence[float],
        down_bandwidths: Sequence[float] | None = None,
        name: str = "star",
    ) -> "Platform":
        """Star-shaped platform routed through a central switch.

        The effective (logical) bandwidth between ``u`` and ``v`` is the
        bottleneck of ``u``'s uplink and ``v``'s downlink:
        ``b_{u,v} = min(up[u], down[v])``.  This mirrors the paper's remark
        that links need not be physical.
        """
        up = np.asarray(up_bandwidths, dtype=float)
        down = up if down_bandwidths is None else np.asarray(down_bandwidths, dtype=float)
        n = len(speeds)
        if up.shape != (n,) or down.shape != (n,):
            raise ValidationError(
                "up/down bandwidth vectors must have one entry per processor"
            )
        bw = np.minimum(up[:, None], down[None, :])
        np.fill_diagonal(bw, 0.0)
        return cls(speeds, bw, name=name)

    @classmethod
    def from_comm_times(
        cls,
        comp_times: Sequence[float],
        comm_times: Sequence[Sequence[float]] | npt.NDArray[np.float64],
        name: str = "from-times",
    ) -> "Platform":
        """Build a platform from per-resource *times* for unit work/files.

        The paper's examples and Table 2 experiments are parameterized by
        computation and communication **times** rather than speeds and
        bandwidths.  With unit stage works and unit file sizes
        (``w_k = delta_i = 1``), a processor that should take ``t`` time
        units per stage gets speed ``1/t`` and a link that should take
        ``t`` gets bandwidth ``1/t``; a communication time of 0 becomes an
        infinite bandwidth.
        """
        ct = np.asarray(comp_times, dtype=float)
        mt = np.asarray(comm_times, dtype=float)
        n = ct.size
        if mt.shape != (n, n):
            raise ValidationError(
                f"comm_times must be {n}x{n} to match {n} processors"
            )
        if np.any(ct <= 0) or not np.all(np.isfinite(ct)):
            raise ValidationError("every computation time must be finite and > 0")
        off = ~np.eye(n, dtype=bool)
        if np.any(mt[off] < 0) or np.any(np.isnan(mt[off])):
            raise ValidationError("communication times must be >= 0")
        with np.errstate(divide="ignore"):
            bw = np.where(mt > 0, 1.0 / np.where(mt > 0, mt, 1.0), np.inf)
        np.fill_diagonal(bw, 0.0)
        return cls(1.0 / ct, bw, name=name)

    def with_failure_rates(
        self, failure_rates: Sequence[float] | float
    ) -> "Platform":
        """Copy of this platform with the given per-processor failure rates.

        A scalar is broadcast to every processor — the homogeneous
        failure model of the multi-criteria papers.
        """
        if isinstance(failure_rates, (int, float)):
            rates: Sequence[float] = [float(failure_rates)] * self.n_processors
        else:
            rates = [float(r) for r in failure_rates]
        return Platform(
            self.speeds, self.bandwidths, name=self.name, failure_rates=rates
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation (``inf`` encoded as the string "inf").

        ``failure_rates`` is emitted only when a failure model is set, so
        failure-free platforms serialize to exactly the same bytes as
        before the reliability objective existed — the campaign store's
        content digests rely on this.
        """

        def enc(x: float) -> float | str:
            return "inf" if math.isinf(x) else float(x)

        data: dict[str, Any] = {
            "name": self.name,
            "speeds": [float(s) for s in self.speeds],
            "bandwidths": [[enc(b) for b in row] for row in self.bandwidths],
        }
        if self.failure_rates is not None:
            data["failure_rates"] = [float(f) for f in self.failure_rates]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Platform":
        """Inverse of :meth:`to_dict`."""

        def dec(x: float | str) -> float:
            return math.inf if x == "inf" else float(x)

        bw = [[dec(b) for b in row] for row in data["bandwidths"]]
        return cls(
            data["speeds"],
            bw,
            name=data.get("name", "platform"),
            failure_rates=data.get("failure_rates"),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Platform(name={self.name!r}, n_processors={self.n_processors})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Platform):
            return NotImplemented
        if (self.failure_rates is None) != (other.failure_rates is None):
            return False
        if self.failure_rates is not None and other.failure_rates is not None:
            if not np.array_equal(self.failure_rates, other.failure_rates):
                return False
        return bool(
            np.array_equal(self.speeds, other.speeds)
            and np.array_equal(self.bandwidths, other.bandwidths)
        )

    def __hash__(self) -> int:
        fr = None if self.failure_rates is None else self.failure_rates.tobytes()
        return hash((self.speeds.tobytes(), self.bandwidths.tobytes(), fr))
