"""Latency analysis of mapped workflows (companion metric to the period).

The paper optimizes throughput; the literature it builds on (Subhlok &
Vondran's latency/throughput tradeoffs, Vydyanathan et al.'s
latency-under-throughput-constraints) makes *latency* — the time one data
set spends in the pipeline — the natural companion metric, so the library
provides it too.

Two regimes, both computed on the exact TPN simulation:

* **saturated** — all data sets available at time 0 (the period-defining
  regime); latency of data set ``j`` is measured from the start of its
  ``S_0`` computation to the completion of its ``S_{n-1}``;
* **paced** — data set ``j`` is released at ``j * T`` for an injection
  period ``T``; latency is completion minus release.  For ``T < P`` the
  backlog grows and latency diverges linearly; for ``T >> P`` each data
  set flows through an empty pipeline and the latency approaches the
  contention-free path bound.

:func:`path_latency_bound` gives that contention-free bound — the sum of
computation and transfer times along the data set's round-robin path — a
lower bound on any regime's latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from ..errors import SimulationError
from ..petri.builder import DEFAULT_MAX_ROWS, build_tpn
from ..simulation.event_sim import simulate
from .instance import Instance
from .models import CommModel
from .paths import path_of_dataset

__all__ = ["LatencyReport", "measure_latency", "path_latency_bound"]


@dataclass(frozen=True)
class LatencyReport:
    """Latency statistics over the first ``N`` data sets.

    Attributes
    ----------
    latencies:
        Per-data-set latency, index = data set number.
    injection_period:
        ``None`` for the saturated regime, else the pacing ``T``.
    model:
        Communication model simulated.
    """

    latencies: npt.NDArray[np.float64]
    injection_period: float | None
    model: CommModel

    @property
    def n_datasets(self) -> int:
        """Number of data sets measured."""
        return int(self.latencies.size)

    @property
    def mean(self) -> float:
        """Mean latency (float64 accumulator pinned explicitly)."""
        return float(self.latencies.mean(dtype=np.float64))

    @property
    def max(self) -> float:
        """Worst latency."""
        return float(self.latencies.max())

    def steady_latency(self, tail_fraction: float = 0.25) -> float:
        """Mean latency over the trailing window (transient excluded).

        Meaningful in the paced regime with ``T >= P`` where latency
        converges; in the saturated regime it keeps growing (backlog).
        ``tail_fraction`` must lie in ``(0, 1]``; the window always
        contains at least one data set, so single-dataset reports are
        well-defined for every legal fraction.
        """
        if not 0.0 < tail_fraction <= 1.0:
            raise SimulationError(
                f"tail_fraction must be in (0, 1], got {tail_fraction!r}"
            )
        k = max(1, int(self.n_datasets * tail_fraction))
        return float(self.latencies[-k:].mean(dtype=np.float64))


def path_latency_bound(inst: Instance, dataset: int = 0) -> float:
    """Contention-free latency of a data set: its path's total time.

    Sums ``w_i / Pi`` and ``delta_i / b`` along the round-robin path of
    ``dataset``.  A lower bound on the latency in every regime and every
    communication model.
    """
    path = path_of_dataset(inst.mapping, dataset)
    total = 0.0
    for stage, proc in enumerate(path.processors):
        total += inst.comp_time(stage, proc)
        if stage < inst.n_stages - 1:
            total += inst.comm_time(stage, proc, path.processors[stage + 1])
    return total


def measure_latency(
    inst: Instance,
    model: CommModel | str,
    n_datasets: int = 60,
    injection_period: float | None = None,
    max_rows: int | None = DEFAULT_MAX_ROWS,
) -> LatencyReport:
    """Exact latency of the first ``n_datasets`` data sets by simulation.

    Parameters
    ----------
    inst, model:
        The mapped instance and communication model.
    n_datasets:
        How many data sets to measure (the simulation horizon is the
        covering number of round-robin sweeps).
    injection_period:
        ``None`` → saturated regime (latency from the start of the data
        set's first computation); a float ``T`` → data set ``j`` released
        at ``j * T`` (latency from release).

    Examples
    --------
    With slow pacing, latency equals the contention-free path bound:

    >>> from repro.experiments import example_a
    >>> inst = example_a()
    >>> rep = measure_latency(inst, "overlap", n_datasets=12,
    ...                       injection_period=10_000.0)
    >>> bound = path_latency_bound(inst, 0)
    >>> bool(abs(rep.latencies[0] - bound) < 1e-9)
    True
    """
    if n_datasets < 1:
        raise SimulationError("n_datasets must be >= 1")
    model = CommModel.parse(model)
    net = build_tpn(inst, model, max_rows=max_rows)
    m = net.n_rows
    n_firings = (n_datasets + m - 1) // m + 1
    trace = simulate(net, n_firings, release_period=injection_period)

    last_col = net.n_columns - 1
    first_ids = np.array([net.transition_at(r, 0).index for r in range(m)])
    last_ids = np.array([net.transition_at(r, last_col).index for r in range(m)])
    first_durs = np.array([net.transitions[t].duration for t in first_ids])

    completions = trace.completion[:, last_ids].reshape(-1)  # dataset order
    if injection_period is None:
        starts = (trace.completion[:, first_ids] - first_durs).reshape(-1)
    else:
        starts = np.arange(n_firings * m, dtype=float) * injection_period
    latencies = (completions - starts)[:n_datasets]
    latencies.setflags(write=False)
    return LatencyReport(
        latencies=latencies,
        injection_period=injection_period,
        model=model,
    )
