"""Core domain models: application, platform, mapping, cycle-times, API."""

from .application import Application, Stage
from .cycle_time import (
    CycleTimeReport,
    ProcessorCycleTime,
    cycle_times,
    maximum_cycle_time,
)
from .instance import Instance
from .latency import LatencyReport, measure_latency, path_latency_bound
from .mapping import Mapping
from .models import CommModel
from .paths import Path, enumerate_paths, format_path_table, path_of_dataset
from .platform import Platform
from .throughput import PeriodResult, compute_period, compute_throughput

__all__ = [
    "Application",
    "Stage",
    "Platform",
    "Mapping",
    "Instance",
    "CommModel",
    "Path",
    "enumerate_paths",
    "path_of_dataset",
    "format_path_table",
    "CycleTimeReport",
    "ProcessorCycleTime",
    "cycle_times",
    "maximum_cycle_time",
    "PeriodResult",
    "compute_period",
    "compute_throughput",
    "LatencyReport",
    "measure_latency",
    "path_latency_bound",
]
