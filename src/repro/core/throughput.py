"""Top-level period / throughput API.

:func:`compute_period` is the main entry point of the library: given a
mapped instance and a communication model it returns the exact steady-
state period (and hence throughput) together with the lower bound
``M_ct`` and the critical-resource verdict.

Method selection:

* ``"auto"`` — Theorem 1's polynomial algorithm for OVERLAP ONE-PORT,
  full-TPN critical-cycle analysis for STRICT ONE-PORT;
* ``"polynomial"`` — force the Theorem 1 path (OVERLAP only);
* ``"tpn"`` — force the full timed-Petri-net computation (both models);
* ``"simulation"`` — estimate by discrete-event simulation (approximate;
  useful as an independent cross-check).

Sweeps: evaluating thousands of ``(instance, model)`` pairs one
``compute_period`` call at a time rebuilds the TPN and the solver's
structural phases from scratch each call.  Use
:func:`repro.engine.evaluate` (bit-identical results) to amortize
that work across instances sharing a mapping topology and to shard the
batch over worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.bounds import classify_critical_resource
from ..algorithms.general_tpn import TpnSolution, tpn_period
from ..algorithms.overlap_poly import OverlapBreakdown, overlap_period
from ..errors import ValidationError
from ..petri.builder import DEFAULT_MAX_ROWS, build_tpn
from ..simulation.steady_state import estimate_period
from .instance import Instance
from .models import CommModel

__all__ = ["PeriodResult", "compute_period", "compute_throughput"]


@dataclass(frozen=True)
class PeriodResult:
    """Outcome of a period computation.

    Attributes
    ----------
    period:
        Steady-state per-data-set period ``P`` (time between consecutive
        data-set completions).
    throughput:
        ``1 / P`` — data sets per time unit.
    model:
        Communication model used.
    method:
        Which algorithm produced the value
        (``"polynomial"``, ``"tpn"``, ``"simulation"``).
    m:
        Number of round-robin paths ``lcm(m_i)`` (Proposition 1).
    mct:
        The cycle-time lower bound ``M_ct``.
    has_critical_resource:
        ``True`` when ``P = M_ct``; ``False`` flags the paper's
        interesting case where every resource idles.
    breakdown:
        Column decomposition (polynomial method only).
    tpn_solution:
        Full-TPN solution with the critical cycle (tpn method only).
    """

    period: float
    throughput: float
    model: CommModel
    method: str
    m: int
    mct: float
    has_critical_resource: bool
    breakdown: OverlapBreakdown | None = None
    tpn_solution: TpnSolution | None = None

    @property
    def relative_gap(self) -> float:
        """``(P - M_ct) / M_ct`` — 0 when a critical resource exists."""
        return (self.period - self.mct) / self.mct if self.mct > 0 else 0.0

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"model              : {self.model.value}",
            f"method             : {self.method}",
            f"paths (m)          : {self.m}",
            f"period P           : {self.period:g}",
            f"throughput 1/P     : {self.throughput:g}",
            f"cycle-time bound   : {self.mct:g}",
            f"critical resource  : "
            + ("yes (P = Mct)" if self.has_critical_resource
               else f"NO — every resource idles (gap {100 * self.relative_gap:.2f}%)"),
        ]
        return "\n".join(lines)


def compute_period(
    inst: Instance,
    model: CommModel | str,
    method: str = "auto",
    max_rows: int | None = DEFAULT_MAX_ROWS,
    n_firings: int | None = None,
) -> PeriodResult:
    """Exact (or simulated) steady-state period of a mapped workflow.

    Parameters
    ----------
    inst:
        The validated instance (application + platform + mapping).
    model:
        ``"overlap"`` or ``"strict"`` (or a :class:`CommModel`).
    method:
        ``"auto"`` / ``"polynomial"`` / ``"tpn"`` / ``"simulation"``.
    max_rows:
        Row budget for methods that build the full net.
    n_firings:
        Simulation horizon (``"simulation"`` method only).

    Examples
    --------
    >>> from repro.experiments.examples_paper import example_a
    >>> compute_period(example_a(), "overlap").period
    189.0
    >>> round(compute_period(example_a(), "strict").period, 2)
    230.67
    """
    model = CommModel.parse(model)
    if method == "auto":
        method = "polynomial" if model.overlap else "tpn"

    breakdown: OverlapBreakdown | None = None
    solution: TpnSolution | None = None
    if method == "polynomial":
        if not model.overlap:
            raise ValidationError(
                "the polynomial algorithm (Theorem 1) only applies to the "
                "OVERLAP ONE-PORT model; use method='tpn' for STRICT"
            )
        breakdown = overlap_period(inst)
        period = breakdown.period
    elif method == "tpn":
        solution = tpn_period(inst, model, max_rows=max_rows)
        period = solution.period
    elif method == "simulation":
        net = build_tpn(inst, model, max_rows=max_rows)
        period = estimate_period(net, n_firings=n_firings).period
    else:
        raise ValidationError(
            f"unknown method {method!r}; expected auto/polynomial/tpn/simulation"
        )

    verdict = classify_critical_resource(inst, model, period)
    return PeriodResult(
        period=period,
        throughput=1.0 / period if period > 0 else float("inf"),
        model=model,
        method=method,
        m=inst.num_paths,
        mct=verdict.mct,
        has_critical_resource=verdict.has_critical_resource,
        breakdown=breakdown,
        tpn_solution=solution,
    )


def compute_throughput(
    inst: Instance,
    model: CommModel | str,
    method: str = "auto",
    max_rows: int | None = DEFAULT_MAX_ROWS,
) -> float:
    """Steady-state throughput ``rho = 1 / P`` (data sets per time unit)."""
    return compute_period(inst, model, method=method, max_rows=max_rows).throughput
