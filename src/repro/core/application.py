"""Application model: a linear pipeline of stages (Section 2, Figure 1).

A workflow is a chain ``S_0 → S_1 → ... → S_{n-1}``.  Stage ``S_k`` costs
``w_k`` FLOP and produces an output file ``F_k`` of ``delta_k`` bytes which
is the input of ``S_{k+1}``.  ``S_0`` reads no input file and ``S_{n-1}``
writes no output file; all sizes are independent of the data set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..errors import ValidationError
from ..utils import check_non_negative

__all__ = ["Stage", "Application"]


@dataclass(frozen=True)
class Stage:
    """One pipeline stage.

    Parameters
    ----------
    work:
        Computation cost ``w_k`` in FLOP.  Must be finite and >= 0 (zero
        models a pure forwarding stage).
    name:
        Optional human-readable label; defaults to ``S{k}`` when the stage
        is placed inside an :class:`Application`.
    """

    work: float
    name: str = ""

    def __post_init__(self) -> None:
        check_non_negative("work", [self.work])


@dataclass(frozen=True)
class Application:
    """A linear-chain streaming application.

    Parameters
    ----------
    works:
        Sequence of ``n`` stage costs ``w_0 ... w_{n-1}`` (FLOP).
    file_sizes:
        Sequence of ``n - 1`` inter-stage file sizes
        ``delta_0 ... delta_{n-2}`` (bytes); ``delta_i`` is the size of the
        file ``F_i`` sent from ``S_i`` to ``S_{i+1}``.
    name:
        Optional label used in reports.

    Examples
    --------
    The 4-stage pipeline of Figure 1:

    >>> app = Application(works=[1.0, 2.0, 3.0, 1.0], file_sizes=[10, 20, 30])
    >>> app.n_stages
    4
    >>> app.work(2)
    3.0
    >>> app.file_size(0)
    10.0
    """

    works: tuple[float, ...]
    file_sizes: tuple[float, ...]
    name: str = "pipeline"
    stage_names: tuple[str, ...] = field(default=())

    def __init__(
        self,
        works: Sequence[float],
        file_sizes: Sequence[float],
        name: str = "pipeline",
        stage_names: Sequence[str] | None = None,
    ) -> None:
        works_t = tuple(float(w) for w in works)
        sizes_t = tuple(float(d) for d in file_sizes)
        if len(works_t) < 1:
            raise ValidationError("an application needs at least one stage")
        if len(sizes_t) != len(works_t) - 1:
            raise ValidationError(
                f"expected {len(works_t) - 1} file sizes for {len(works_t)} "
                f"stages, got {len(sizes_t)}"
            )
        try:
            check_non_negative("works", works_t)
            check_non_negative("file_sizes", sizes_t)
        except ValueError as exc:  # normalize to the library hierarchy
            raise ValidationError(str(exc)) from exc
        if stage_names is None:
            names_t = tuple(f"S{k}" for k in range(len(works_t)))
        else:
            names_t = tuple(str(s) for s in stage_names)
            if len(names_t) != len(works_t):
                raise ValidationError(
                    f"expected {len(works_t)} stage names, got {len(names_t)}"
                )
        object.__setattr__(self, "works", works_t)
        object.__setattr__(self, "file_sizes", sizes_t)
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "stage_names", names_t)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """Number of stages ``n``."""
        return len(self.works)

    @property
    def n_files(self) -> int:
        """Number of inter-stage files, ``n - 1``."""
        return len(self.file_sizes)

    def work(self, k: int) -> float:
        """Computation cost ``w_k`` of stage ``S_k`` (FLOP)."""
        return self.works[self._check_stage(k)]

    def file_size(self, i: int) -> float:
        """Size ``delta_i`` of file ``F_i`` shipped from ``S_i`` to ``S_{i+1}``."""
        if not 0 <= i < self.n_files:
            raise IndexError(f"file index {i} out of range [0, {self.n_files})")
        return self.file_sizes[i]

    def stage_name(self, k: int) -> str:
        """Label of stage ``S_k``."""
        return self.stage_names[self._check_stage(k)]

    def stages(self) -> Iterator[Stage]:
        """Iterate over :class:`Stage` views of the pipeline."""
        for k, w in enumerate(self.works):
            yield Stage(work=w, name=self.stage_names[k])

    def _check_stage(self, k: int) -> int:
        if not 0 <= k < self.n_stages:
            raise IndexError(f"stage index {k} out of range [0, {self.n_stages})")
        return k

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation (see :mod:`repro.core.serialization`)."""
        return {
            "name": self.name,
            "works": list(self.works),
            "file_sizes": list(self.file_sizes),
            "stage_names": list(self.stage_names),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Application":
        """Inverse of :meth:`to_dict`."""
        return cls(
            works=data["works"],
            file_sizes=data["file_sizes"],
            name=data.get("name", "pipeline"),
            stage_names=data.get("stage_names"),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Application(name={self.name!r}, n_stages={self.n_stages}, "
            f"works={list(self.works)}, file_sizes={list(self.file_sizes)})"
        )
