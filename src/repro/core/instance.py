"""Problem instance: an application, a platform and a mapping, validated together."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any
from pathlib import Path

from ..errors import ValidationError
from ..utils import canonical_json
from .application import Application
from .mapping import Mapping
from .platform import Platform

__all__ = ["Instance"]


@dataclass(frozen=True)
class Instance:
    """A fully specified problem: *what* runs *where*.

    Bundles an :class:`~repro.core.application.Application`, a
    :class:`~repro.core.platform.Platform` and a
    :class:`~repro.core.mapping.Mapping` and validates their cross
    consistency (stage counts match, processor indices are in range).
    All the period-computation entry points of the library take an
    ``Instance``.

    Examples
    --------
    >>> from repro import Application, Platform, Mapping, Instance
    >>> inst = Instance(
    ...     Application(works=[1, 1], file_sizes=[1]),
    ...     Platform.homogeneous(3),
    ...     Mapping([(0,), (1, 2)]),
    ... )
    >>> inst.comp_time(stage=1, proc=2)
    1.0
    """

    application: Application
    platform: Platform
    mapping: Mapping

    def __post_init__(self) -> None:
        app, plat, mp = self.application, self.platform, self.mapping
        if mp.n_stages != app.n_stages:
            raise ValidationError(
                f"mapping covers {mp.n_stages} stages but the application "
                f"has {app.n_stages}"
            )
        for u in mp.used_processors:
            if u >= plat.n_processors:
                raise ValidationError(
                    f"mapping uses processor P{u} but the platform only has "
                    f"{plat.n_processors} processors"
                )

    # ------------------------------------------------------------------
    # convenience accessors used throughout the library
    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """Number of pipeline stages."""
        return self.application.n_stages

    @property
    def num_paths(self) -> int:
        """``m = lcm(m_i)``, the number of round-robin paths (Prop. 1)."""
        return self.mapping.num_paths

    @property
    def replication_counts(self) -> tuple[int, ...]:
        """Per-stage replication factors ``(m_0, ..., m_{n-1})``."""
        return self.mapping.replication_counts

    def comp_time(self, stage: int, proc: int) -> float:
        """Time for ``proc`` to run one data set of ``stage``: ``w_k / Pi_u``."""
        return self.platform.comp_time(self.application.work(stage), proc)

    def comm_time(self, file_index: int, src: int, dst: int) -> float:
        """Time to ship ``F_i`` from ``src`` to ``dst``: ``delta_i / b``."""
        return self.platform.comm_time(
            self.application.file_size(file_index), src, dst
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation of the whole instance."""
        return {
            "application": self.application.to_dict(),
            "platform": self.platform.to_dict(),
            "mapping": self.mapping.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Instance":
        """Inverse of :meth:`to_dict`."""
        return cls(
            Application.from_dict(data["application"]),
            Platform.from_dict(data["platform"]),
            Mapping.from_dict(data["mapping"]),
        )

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Serialize to canonical JSON; also writes ``path`` when given.

        Keys are sorted (:func:`repro.utils.canonical_json`) so equal
        instances serialize to identical bytes — instance files diff
        cleanly and can be digested by the campaign store.
        """
        text = canonical_json(self.to_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "Instance":
        """Load an instance from a JSON string or file path."""
        if isinstance(source, Path) or (
            isinstance(source, str) and "\n" not in source and source.endswith(".json")
        ):
            text = Path(source).read_text()
        else:
            text = str(source)
        return cls.from_dict(json.loads(text))
