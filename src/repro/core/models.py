"""Communication models of the paper (Section 2).

The paper studies two realistic one-port communication models:

* :attr:`CommModel.OVERLAP_ONE_PORT` — communications overlap computation:
  a processor can simultaneously receive the input of data set ``i+1``,
  compute data set ``i`` and send the result of data set ``i-1``.  Each
  *port* (incoming, outgoing) still serializes its own transfers.
* :attr:`CommModel.STRICT_ONE_PORT` — no overlap: a processor either
  receives, computes, or sends.  The three operations of one data set are
  executed as a serial receive → compute → send cycle.
"""

from __future__ import annotations

import enum

__all__ = ["CommModel"]


class CommModel(enum.Enum):
    """One-port communication model used for period computation."""

    #: Communications overlap computations (multi-threaded, full duplex).
    OVERLAP_ONE_PORT = "overlap"
    #: Receive, compute and send are mutually exclusive (single thread).
    STRICT_ONE_PORT = "strict"

    @classmethod
    def parse(cls, value: "CommModel | str") -> "CommModel":
        """Coerce a user-supplied value into a :class:`CommModel`.

        Accepts the enum itself, its ``value`` ("overlap"/"strict"), or its
        name in any case ("OVERLAP_ONE_PORT", "strict_one_port", ...).
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            low = value.strip().lower()
            for member in cls:
                if low in (member.value, member.name.lower()):
                    return member
        raise ValueError(
            f"unknown communication model {value!r}; expected one of "
            f"{[m.value for m in cls]}"
        )

    @property
    def overlap(self) -> bool:
        """``True`` when communications overlap computations."""
        return self is CommModel.OVERLAP_ONE_PORT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
