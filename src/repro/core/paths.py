"""Round-robin path enumeration (Proposition 1, Table 1).

With stage ``S_i`` replicated on ``m_i`` processors served round-robin,
data set ``j`` follows the path
``(P_{0, j mod m_0}, ..., P_{n-1, j mod m_{n-1}})``.
Proposition 1: the number of **distinct** paths is
``m = lcm(m_0, ..., m_{n-1})`` and data set ``j`` takes the same path as
data set ``j mod m``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mapping import Mapping

__all__ = ["Path", "enumerate_paths", "path_of_dataset", "format_path_table"]


@dataclass(frozen=True)
class Path:
    """One of the ``m`` round-robin paths.

    Attributes
    ----------
    index:
        Path number ``j`` in ``[0, m)``; data sets ``j, j + m, j + 2m, ...``
        follow this path.
    processors:
        The processor of each stage, ``(P_{0, j mod m_0}, ...)``.
    """

    index: int
    processors: tuple[int, ...]

    def __str__(self) -> str:
        route = " -> ".join(f"P{u}" for u in self.processors)
        return f"path {self.index}: {route}"


def path_of_dataset(mapping: Mapping, dataset: int) -> Path:
    """Path followed by a given data set (round-robin rule)."""
    m = mapping.num_paths
    j = int(dataset)
    return Path(
        index=j % m,
        processors=tuple(
            mapping.processor_for(stage, j) for stage in range(mapping.n_stages)
        ),
    )


def enumerate_paths(mapping: Mapping) -> list[Path]:
    """All ``m = lcm(m_i)`` distinct paths, in data-set order.

    Examples
    --------
    Example A of the paper (Figure 2 / Table 1): ``S_0`` on ``P_0``,
    ``S_1`` on ``P_1, P_2``, ``S_2`` on ``P_3, P_4, P_5``, ``S_3`` on ``P_6``:

    >>> mp = Mapping([(0,), (1, 2), (3, 4, 5), (6,)])
    >>> for path in enumerate_paths(mp):
    ...     print(path)
    path 0: P0 -> P1 -> P3 -> P6
    path 1: P0 -> P2 -> P4 -> P6
    path 2: P0 -> P1 -> P5 -> P6
    path 3: P0 -> P2 -> P3 -> P6
    path 4: P0 -> P1 -> P4 -> P6
    path 5: P0 -> P2 -> P5 -> P6
    """
    return [path_of_dataset(mapping, j) for j in range(mapping.num_paths)]


def format_path_table(mapping: Mapping, n_datasets: int | None = None) -> str:
    """Render the paper's Table 1: paths followed by the first data sets.

    Parameters
    ----------
    mapping:
        The replicated mapping.
    n_datasets:
        How many data sets to list; defaults to ``m + 2`` so the wrap-around
        (data set ``m`` re-using path 0) is visible, exactly like Table 1
        lists 8 rows for ``m = 6``.
    """
    m = mapping.num_paths
    if n_datasets is None:
        n_datasets = m + 2
    lines = ["Input data | Path in the system", "-----------+-------------------"]
    for j in range(n_datasets):
        path = path_of_dataset(mapping, j)
        route = " -> ".join(f"P{u}" for u in path.processors)
        lines.append(f"{j:>10} | {route}")
    return "\n".join(lines)
