"""Resource cycle-times and the lower bound ``M_ct`` (Section 2).

Every hardware resource — a processor's CPU, its incoming port and its
outgoing port — is busy a fixed amount of time *per data set entering the
system* once the round-robin pattern is accounted for:

* CPU of ``P_u`` running ``S_i``: busy ``w_i / Pi_u`` for one data set out
  of every ``m_i``, i.e. ``C_comp(u) = w_i / (Pi_u * m_i)`` per data set.
* Output port of ``P_u``: over one window of ``L = lcm(m_i, m_{i+1})``
  consecutive data sets, ``P_u`` ships exactly one file to each of its
  ``m_{i+1}/gcd`` receivers, hence
  ``C_out(u) = (sum of those transfer times) / L``.
* Input port, symmetrically over ``lcm(m_{i-1}, m_i)``.

The per-processor cycle-time aggregates the three figures:

* OVERLAP ONE-PORT: ``C_exec = max(C_in, C_comp, C_out)`` — the three
  activities proceed concurrently, the busiest one is the bottleneck;
* STRICT ONE-PORT: ``C_exec = C_in + C_comp + C_out`` — they serialize.

``M_ct = max_u C_exec(u)`` is a **lower bound** on the period: the system
cannot go faster than its busiest resource.  The paper's central
observation is that with replication the bound may be strict — the optimal
period can exceed ``M_ct``, leaving every resource partly idle
(Examples A-strict and B, Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils import lcm_all
from .instance import Instance
from .models import CommModel

__all__ = [
    "ProcessorCycleTime",
    "CycleTimeReport",
    "cycle_times",
    "maximum_cycle_time",
]

#: Tolerance used to decide whether two time values are "equal" when
#: looking for critical resources (relative to the larger value).
REL_TOL = 1e-9


@dataclass(frozen=True)
class ProcessorCycleTime:
    """Cycle-time decomposition of one processor.

    All values are busy times *per data set entering the system*.

    Attributes
    ----------
    proc:
        Processor index.
    stage:
        The stage this processor executes.
    cin:
        Input-port busy time ``C_in`` (0 for processors of ``S_0``).
    ccomp:
        CPU busy time ``C_comp``.
    cout:
        Output-port busy time ``C_out`` (0 for processors of ``S_{n-1}``).
    """

    proc: int
    stage: int
    cin: float
    ccomp: float
    cout: float

    def cexec(self, model: CommModel) -> float:
        """Aggregate cycle-time under the given communication model."""
        if CommModel.parse(model).overlap:
            return max(self.cin, self.ccomp, self.cout)
        return self.cin + self.ccomp + self.cout

    def port_values(self) -> dict[str, float]:
        """The three fine-grained resource values keyed by kind."""
        return {"in": self.cin, "comp": self.ccomp, "out": self.cout}


@dataclass(frozen=True)
class CycleTimeReport:
    """All processor cycle-times of an instance plus the bound ``M_ct``.

    Attributes
    ----------
    model:
        Communication model used for aggregation.
    per_processor:
        One :class:`ProcessorCycleTime` per *used* processor, in
        stage-then-replica order.
    mct:
        The maximum cycle-time ``M_ct`` — a lower bound on the period.
    """

    model: CommModel
    per_processor: tuple[ProcessorCycleTime, ...]
    mct: float

    def critical_processors(self) -> tuple[int, ...]:
        """Processors whose cycle-time attains ``M_ct``."""
        tol = REL_TOL * max(self.mct, 1.0)
        return tuple(
            ct.proc
            for ct in self.per_processor
            if abs(ct.cexec(self.model) - self.mct) <= tol
        )

    def critical_resources(self) -> tuple[tuple[int, str], ...]:
        """Fine-grained ``(processor, kind)`` resources attaining ``M_ct``.

        Under OVERLAP ONE-PORT the bottleneck is a specific port or CPU
        (the paper points at "the output port of P0" in Example A); under
        STRICT ONE-PORT the whole processor is the resource, reported with
        kind ``"proc"``.
        """
        tol = REL_TOL * max(self.mct, 1.0)
        out: list[tuple[int, str]] = []
        for ct in self.per_processor:
            if self.model.overlap:
                for kind, value in ct.port_values().items():
                    if abs(value - self.mct) <= tol:
                        out.append((ct.proc, kind))
            elif abs(ct.cexec(self.model) - self.mct) <= tol:
                out.append((ct.proc, "proc"))
        return tuple(out)

    def for_processor(self, proc: int) -> ProcessorCycleTime:
        """Cycle-time entry of one processor."""
        for ct in self.per_processor:
            if ct.proc == proc:
                return ct
        raise KeyError(f"processor P{proc} is not used by the mapping")


def _processor_cycle_time(inst: Instance, stage: int, replica: int) -> ProcessorCycleTime:
    """Cycle-time decomposition for replica ``replica`` of ``stage``."""
    mapping = inst.mapping
    procs = mapping.processors_of(stage)
    u = procs[replica]
    m_i = len(procs)

    ccomp = inst.comp_time(stage, u) / m_i

    cin = 0.0
    if stage > 0:
        senders = mapping.processors_of(stage - 1)
        window = lcm_all([len(senders), m_i])
        total = sum(
            inst.comm_time(stage - 1, senders[j % len(senders)], u)
            for j in range(replica, window, m_i)
        )
        cin = total / window

    cout = 0.0
    if stage < inst.n_stages - 1:
        receivers = mapping.processors_of(stage + 1)
        window = lcm_all([m_i, len(receivers)])
        total = sum(
            inst.comm_time(stage, u, receivers[j % len(receivers)])
            for j in range(replica, window, m_i)
        )
        cout = total / window

    return ProcessorCycleTime(proc=u, stage=stage, cin=cin, ccomp=ccomp, cout=cout)


def cycle_times(inst: Instance, model: CommModel | str) -> CycleTimeReport:
    """Compute every resource cycle-time and the bound ``M_ct``.

    Examples
    --------
    A non-replicated two-stage chain: the period equals the critical
    resource cycle-time (here the communication link is the bottleneck
    under OVERLAP, and the serial sum under STRICT):

    >>> from repro import Application, Platform, Mapping, Instance
    >>> inst = Instance(
    ...     Application(works=[2.0, 3.0], file_sizes=[4.0]),
    ...     Platform.homogeneous(2, speed=1.0, bandwidth=0.5),
    ...     Mapping([(0,), (1,)]),
    ... )
    >>> cycle_times(inst, "overlap").mct
    8.0
    >>> cycle_times(inst, "strict").mct
    11.0
    """
    model = CommModel.parse(model)
    entries: list[ProcessorCycleTime] = []
    for stage in range(inst.n_stages):
        for replica in range(inst.mapping.replication(stage)):
            entries.append(_processor_cycle_time(inst, stage, replica))
    mct = max(ct.cexec(model) for ct in entries)
    return CycleTimeReport(model=model, per_processor=tuple(entries), mct=mct)


def maximum_cycle_time(inst: Instance, model: CommModel | str) -> float:
    """Shortcut for ``cycle_times(inst, model).mct``."""
    return cycle_times(inst, model).mct
