"""Mapping model: replicated stage-to-processor assignment (Section 2).

A mapping assigns stage ``S_i`` to an ordered tuple of ``m_i`` distinct
processors ``(P_{i,0}, ..., P_{i,m_i-1})``.  The paper enforces two rules,
both validated here:

1. a processor executes **at most one** stage;
2. the replicas of a stage serve consecutive data sets in **round-robin**
   order: data set ``j`` of stage ``S_i`` runs on ``P_{i, j mod m_i}``.

The order of processors inside a stage's tuple is therefore semantically
meaningful — it fixes the round-robin phase.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import MappingError
from ..utils import gcd_all, lcm_all

__all__ = ["Mapping"]


class Mapping:
    """Stage-to-processors assignment with replication.

    Parameters
    ----------
    assignments:
        One tuple of processor indices per stage, e.g.
        ``[(0,), (1, 2), (3, 4, 5), (6,)]`` for Example A of the paper
        (``S_1`` replicated on two processors, ``S_2`` on three).
    n_processors:
        Optional platform size used for range validation.  When omitted,
        only non-negativity is checked.

    Examples
    --------
    >>> mp = Mapping([(0,), (1, 2), (3, 4, 5), (6,)])
    >>> mp.replication_counts
    (1, 2, 3, 1)
    >>> mp.num_paths          # Proposition 1: lcm(1, 2, 3, 1)
    6
    >>> mp.processor_for(stage=2, dataset=4)
    4
    """

    __slots__ = ("assignments",)

    def __init__(
        self,
        assignments: Sequence[Sequence[int]],
        n_processors: int | None = None,
    ) -> None:
        assign: list[tuple[int, ...]] = []
        seen: dict[int, int] = {}
        if len(assignments) < 1:
            raise MappingError("a mapping needs at least one stage")
        for i, procs in enumerate(assignments):
            tup = tuple(int(u) for u in procs)
            if len(tup) == 0:
                raise MappingError(f"stage S{i} is mapped on no processor")
            if len(set(tup)) != len(tup):
                raise MappingError(
                    f"stage S{i} lists a processor twice: {tup}; replicas "
                    f"must be distinct processors"
                )
            for u in tup:
                if u < 0:
                    raise MappingError(f"negative processor index {u} in stage S{i}")
                if n_processors is not None and u >= n_processors:
                    raise MappingError(
                        f"stage S{i} uses processor P{u} but the platform "
                        f"only has {n_processors} processors"
                    )
                if u in seen:
                    raise MappingError(
                        f"processor P{u} is assigned to both S{seen[u]} and "
                        f"S{i}; a processor executes at most one stage"
                    )
                seen[u] = i
            assign.append(tup)
        #: Per-stage tuples of processor indices (round-robin order).
        self.assignments = tuple(assign)

    # ------------------------------------------------------------------
    # round-robin semantics
    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """Number of stages covered by the mapping."""
        return len(self.assignments)

    @property
    def replication_counts(self) -> tuple[int, ...]:
        """``(m_0, ..., m_{n-1})`` — the per-stage replication factors."""
        return tuple(len(procs) for procs in self.assignments)

    @property
    def num_paths(self) -> int:
        """Number of distinct round-robin paths ``m = lcm(m_i)`` (Prop. 1)."""
        return lcm_all(self.replication_counts)

    @property
    def used_processors(self) -> tuple[int, ...]:
        """All processors used by the mapping, in stage-then-replica order."""
        return tuple(u for procs in self.assignments for u in procs)

    def processors_of(self, stage: int) -> tuple[int, ...]:
        """Replica tuple of stage ``S_i`` in round-robin order."""
        return self.assignments[self._check_stage(stage)]

    def replication(self, stage: int) -> int:
        """Replication factor ``m_i`` of stage ``S_i``."""
        return len(self.processors_of(stage))

    def processor_for(self, stage: int, dataset: int) -> int:
        """Processor executing data set ``dataset`` of stage ``stage``.

        Round-robin rule: ``P_{i, dataset mod m_i}``.
        """
        procs = self.processors_of(stage)
        return procs[int(dataset) % len(procs)]

    def stage_of(self, proc: int) -> int | None:
        """Stage executed by processor ``proc``, or ``None`` when unused."""
        for i, procs in enumerate(self.assignments):
            if proc in procs:
                return i
        return None

    def replica_index(self, proc: int) -> int | None:
        """Round-robin position of ``proc`` inside its stage, or ``None``."""
        for procs in self.assignments:
            if proc in procs:
                return procs.index(proc)
        return None

    def comm_pairs(self, i: int) -> list[tuple[int, int]]:
        """Distinct (sender, receiver) pairs carrying file ``F_i``.

        Sender ``P_{i, j mod m_i}`` ships data set ``j`` to receiver
        ``P_{i+1, j mod m_{i+1}}``; the set of realized pairs repeats with
        period ``lcm(m_i, m_{i+1})`` in ``j``.  Pairs are returned in
        increasing data-set order of first use.
        """
        if not 0 <= i < self.n_stages - 1:
            raise IndexError(f"file index {i} out of range [0, {self.n_stages - 1})")
        senders = self.assignments[i]
        receivers = self.assignments[i + 1]
        window = lcm_all([len(senders), len(receivers)])
        return [
            (senders[j % len(senders)], receivers[j % len(receivers)])
            for j in range(window)
        ]

    def comm_structure(self, i: int) -> tuple[int, int, int, int]:
        """``(p, u, v, L)`` decomposition constants for file ``F_i``.

        ``p = gcd(m_i, m_{i+1})`` connected components, each a torus of
        ``u = m_i / p`` senders by ``v = m_{i+1} / p`` receivers;
        ``L = lcm(m_i, m_{i+1})`` is the data-set window after which
        sender/receiver pairings repeat (Theorem 1's ``u``, ``v``, ``p``).
        """
        if not 0 <= i < self.n_stages - 1:
            raise IndexError(f"file index {i} out of range [0, {self.n_stages - 1})")
        a = self.replication(i)
        b = self.replication(i + 1)
        p = gcd_all([a, b])
        return p, a // p, b // p, lcm_all([a, b])

    def _check_stage(self, i: int) -> int:
        if not 0 <= i < self.n_stages:
            raise IndexError(f"stage index {i} out of range [0, {self.n_stages})")
        return i

    # ------------------------------------------------------------------
    # serialization & dunder
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation."""
        return {"assignments": [list(procs) for procs in self.assignments]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Mapping":
        """Inverse of :meth:`to_dict`."""
        return cls(data["assignments"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mapping({[list(p) for p in self.assignments]})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self.assignments == other.assignments

    def __hash__(self) -> int:
        return hash(self.assignments)
