"""Setup shim: all metadata lives in ``pyproject.toml``.

Offline fallback: PEP 660 editable installs under setuptools < 70 need
the ``wheel`` package, which minimal containers may lack (the symptom is
``error: invalid command 'bdist_wheel'``).  When ``wheel`` is missing we
expose the vendored stand-in from ``tools/_vendor`` — see its docstring
for the (deliberately tiny) supported surface.  With the real ``wheel``
installed, this file is a plain pass-through.

Offline: ``pip install -e . --no-build-isolation``
Online:  ``pip install -e .``
"""

import sys
from pathlib import Path

from setuptools import setup

cmdclass = {}
try:
    import wheel  # noqa: F401
except ImportError:
    sys.path.insert(0, str(Path(__file__).resolve().parent / "tools" / "_vendor"))
    from wheel.bdist_wheel import bdist_wheel  # vendored shim

    cmdclass["bdist_wheel"] = bdist_wheel

setup(cmdclass=cmdclass)
