#!/usr/bin/env python
"""Documentation checker: intra-repo links + executable code blocks.

Two failure modes make docs rot: a moved file breaks a relative link,
and an API change breaks a pasted example.  This tool fails the build
on both:

* every Markdown link/image target in the repo's ``*.md`` files that is
  neither absolute (``http(s)://``, ``mailto:``) nor a pure fragment
  must resolve to an existing file or directory relative to the file
  that links it;
* every fenced ``python`` code block in README.md is executed (with
  ``src/`` importable) and must run to completion.  Blocks that are
  illustrative rather than runnable should be fenced as ``text`` or
  ``bash`` instead;
* the rule table in docs/ARCHITECTURE.md must agree with the registered
  ``repro.analysis`` rule pack — every rule documented with its current
  name and severity, no ghost rows, none missing;
* the injection-site table in docs/ARCHITECTURE.md §9 must agree with
  the registered ``repro.faults.INJECTION_SITES`` — every site
  documented with its module and fault kinds, no ghost rows, none
  missing, and every site literal actually present in the module that
  claims it.

Run:  python tools/check_docs.py          (from the repo root or anywhere)
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Markdown files whose links are checked.
MD_GLOBS = ["*.md", "docs/*.md"]

#: Vendored/auto-retrieved reference dumps — not maintained docs, their
#: (dead) figure links are upstream's problem.
EXCLUDE = {"PAPERS.md", "SNIPPETS.md"}

#: Files whose ``` ```python``` blocks must execute.
EXECUTABLE_BLOCKS = ["README.md"]

_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_RULE_ROW_RE = re.compile(r"^\|\s*((?:DET|NUM)\d+)\s*\|([^|]*)\|([^|]*)\|", re.MULTILINE)
_SITE_ROW_RE = re.compile(
    r"^\|\s*`([a-z][a-z.-]*)`\s*\|\s*`([^`]+\.py)`\s*\|([^|]*)\|", re.MULTILINE
)
_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def iter_markdown_files() -> list[Path]:
    files: list[Path] = []
    for pattern in MD_GLOBS:
        files.extend(
            p for p in sorted(REPO.glob(pattern)) if p.name not in EXCLUDE
        )
    return files


def check_links() -> list[str]:
    """Return one error string per broken intra-repo link."""
    errors: list[str] = []
    for md in iter_markdown_files():
        for target in _LINK_RE.findall(md.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]  # strip fragments
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md.relative_to(REPO)}: broken link -> {target}"
                )
    return errors


def check_code_blocks() -> list[str]:
    """Execute every fenced python block; return one error per failure."""
    errors: list[str] = []
    for name in EXECUTABLE_BLOCKS:
        md = REPO / name
        blocks = _FENCE_RE.findall(md.read_text())
        if not blocks:
            errors.append(f"{name}: no python code blocks found (expected some)")
        for i, block in enumerate(blocks):
            proc = subprocess.run(
                [sys.executable, "-"],
                input=block,
                text=True,
                capture_output=True,
                cwd=REPO,
                env={
                    **__import__("os").environ,
                    "PYTHONPATH": f"{SRC}",
                },
            )
            if proc.returncode != 0:
                errors.append(
                    f"{name}: python block #{i + 1} failed:\n"
                    f"{proc.stderr.strip()}"
                )
    return errors


def check_rule_table() -> list[str]:
    """docs/ARCHITECTURE.md rule table vs the registered rule pack."""
    sys.path.insert(0, str(SRC))
    try:
        from repro.analysis import RULES
    finally:
        sys.path.pop(0)
    md = REPO / "docs" / "ARCHITECTURE.md"
    rows = {
        m.group(1): (m.group(2).strip(), m.group(3).strip())
        for m in _RULE_ROW_RE.finditer(md.read_text())
    }
    errors: list[str] = []
    for rule_id in sorted(set(rows) - set(RULES)):
        errors.append(
            f"docs/ARCHITECTURE.md: rule table documents {rule_id}, "
            f"which is not registered in repro.analysis.RULES"
        )
    for rule_id in sorted(set(RULES) - set(rows)):
        errors.append(
            f"docs/ARCHITECTURE.md: registered rule {rule_id} is missing "
            f"from the rule table"
        )
    for rule_id in sorted(set(rows) & set(RULES)):
        name, severity = rows[rule_id]
        rule = RULES[rule_id]
        if name != rule.name or severity != rule.severity:
            errors.append(
                f"docs/ARCHITECTURE.md: {rule_id} documented as "
                f"({name!r}, {severity!r}) but registered as "
                f"({rule.name!r}, {rule.severity!r})"
            )
    return errors


def check_fault_table() -> list[str]:
    """docs/ARCHITECTURE.md §9 site table vs ``INJECTION_SITES``."""
    sys.path.insert(0, str(SRC))
    try:
        from repro.faults import INJECTION_SITES
    finally:
        sys.path.pop(0)
    md = REPO / "docs" / "ARCHITECTURE.md"
    rows = {
        m.group(1): (m.group(2).strip(), m.group(3).strip())
        for m in _SITE_ROW_RE.finditer(md.read_text())
    }
    errors: list[str] = []
    for name in sorted(set(rows) - set(INJECTION_SITES)):
        errors.append(
            f"docs/ARCHITECTURE.md: site table documents {name!r}, which "
            f"is not registered in repro.faults.INJECTION_SITES"
        )
    for name in sorted(set(INJECTION_SITES) - set(rows)):
        errors.append(
            f"docs/ARCHITECTURE.md: registered injection site {name!r} is "
            f"missing from the site table"
        )
    for name in sorted(set(rows) & set(INJECTION_SITES)):
        module, kinds = rows[name]
        site = INJECTION_SITES[name]
        if module != site.module or kinds != ", ".join(site.kinds):
            errors.append(
                f"docs/ARCHITECTURE.md: site {name!r} documented as "
                f"({module!r}, {kinds!r}) but registered as "
                f"({site.module!r}, {', '.join(site.kinds)!r})"
            )
        source_file = SRC / "repro" / site.module
        if not source_file.exists():
            errors.append(
                f"repro.faults: site {name!r} claims module "
                f"{site.module!r}, which does not exist under src/repro/"
            )
        elif f'"{name}"' not in source_file.read_text():
            errors.append(
                f"src/repro/{site.module}: registered injection site "
                f"{name!r} never appears in its claimed module"
            )
    return errors


def main() -> int:
    link_errors = check_links()
    code_errors = check_code_blocks()
    rule_errors = check_rule_table()
    fault_errors = check_fault_table()
    for err in link_errors + code_errors + rule_errors + fault_errors:
        print(f"ERROR {err}", file=sys.stderr)
    n_md = len(iter_markdown_files())
    n_blocks = sum(
        len(_FENCE_RE.findall((REPO / name).read_text()))
        for name in EXECUTABLE_BLOCKS
    )
    if link_errors or code_errors or rule_errors or fault_errors:
        print(f"\ndocs check FAILED "
              f"({len(link_errors)} broken links, "
              f"{len(code_errors)} broken code blocks, "
              f"{len(rule_errors)} rule-table mismatches, "
              f"{len(fault_errors)} site-table mismatches)", file=sys.stderr)
        return 1
    print(f"docs check OK: {n_md} markdown files linked consistently, "
          f"{n_blocks} README python blocks executed, rule and "
          f"injection-site tables in sync")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
