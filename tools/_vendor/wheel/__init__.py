"""Minimal stand-in for the ``wheel`` package (offline editable installs).

This is **not** the PyPA ``wheel`` project.  It implements just the
surface that ``setuptools``' PEP 660 editable-install machinery
(``setuptools/command/editable_wheel.py`` and ``dist_info.py``) touches:

* :class:`wheel.wheelfile.WheelFile` — a ``ZipFile`` that records
  sha256 hashes and emits a PEP 376 ``RECORD`` on close;
* :class:`wheel.bdist_wheel.bdist_wheel` — a command providing
  ``get_tag()`` (always the pure-Python ``py3-none-any``),
  ``write_wheelfile()`` and ``egg2dist()``.

``setup.py`` puts this package on ``sys.path`` **only when the real
``wheel`` distribution is missing** — i.e. offline containers where
``pip install -e . --no-build-isolation`` would otherwise die with
``error: invalid command 'bdist_wheel'``.  Environments with the real
``wheel`` installed (CI, dev boxes) never import this copy.

Only pure-Python, ``Root-Is-Purelib: true`` projects are supported —
which is exactly this project.
"""

__version__ = "0.0.0+repro.vendored"
