"""A ZipFile subclass that maintains the wheel's RECORD manifest."""

from __future__ import annotations

import base64
import hashlib
import os
import re
import zipfile

__all__ = ["WheelFile"]

#: ``{name}-{version}[-{build}]-{python}-{abi}-{platform}.whl``
_WHEEL_NAME = re.compile(
    r"(?P<name>[^-]+)-(?P<version>[^-]+)(-(?P<build>\d[^-]*))?"
    r"-(?P<pyver>[^-]+)-(?P<abi>[^-]+)-(?P<plat>[^-.]+)\.whl$"
)


def _urlsafe_b64(data: bytes) -> str:
    return base64.urlsafe_b64encode(data).rstrip(b"=").decode("ascii")


class WheelFile(zipfile.ZipFile):
    """Write-mode wheel archive with automatic RECORD generation.

    Every ``write``/``writestr`` is hashed (sha256); ``close`` appends
    the ``RECORD`` file pip validates at install time.
    """

    def __init__(self, file, mode: str = "r", compression=zipfile.ZIP_DEFLATED):
        super().__init__(file, mode, compression=compression, allowZip64=True)
        match = _WHEEL_NAME.match(os.path.basename(str(file)))
        if match is None:
            raise ValueError(f"bad wheel filename {file!r}")
        self.parsed_filename = match
        self.dist_info_path = f"{match.group('name')}-{match.group('version')}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._records: list[tuple[str, str, int]] = []

    # -- recording writers -------------------------------------------------
    def writestr(self, zinfo_or_arcname, data, *args, **kwargs):
        if isinstance(data, str):
            data = data.encode("utf-8")
        arcname = (
            zinfo_or_arcname.filename
            if isinstance(zinfo_or_arcname, zipfile.ZipInfo)
            else str(zinfo_or_arcname)
        )
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)
        self._record(arcname, data)

    def write(self, filename, arcname=None, *args, **kwargs):
        arcname = str(arcname if arcname is not None else filename)
        super().write(filename, arcname, *args, **kwargs)
        with open(filename, "rb") as fh:
            self._record(arcname, fh.read())

    def write_files(self, base_dir: str) -> None:
        """Add every file under ``base_dir`` (sorted, RECORD excluded)."""
        entries = []
        for root, _dirs, files in os.walk(base_dir):
            for name in files:
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                if arcname != self.record_path:
                    entries.append((path, arcname))
        for path, arcname in sorted(entries, key=lambda item: item[1]):
            self.write(path, arcname)

    # -- RECORD ------------------------------------------------------------
    def _record(self, arcname: str, data: bytes) -> None:
        digest = hashlib.sha256(data).digest()
        self._records.append((arcname, f"sha256={_urlsafe_b64(digest)}", len(data)))

    def close(self) -> None:
        if self.mode == "w" and self._records:
            lines = [
                f"{name},{digest},{size}" for name, digest, size in self._records
            ]
            lines.append(f"{self.record_path},,")
            record = "\n".join(lines) + "\n"
            self._records = []
            super().writestr(self.record_path, record.encode("utf-8"))
        super().close()
