"""Pure-Python ``bdist_wheel`` command: just enough for editable installs.

``setuptools``' ``dist_info`` command calls :meth:`bdist_wheel.egg2dist`
while preparing PEP 660 metadata, and ``editable_wheel`` calls
:meth:`get_tag` / :meth:`write_wheelfile`.  Nothing else of the real
command is implemented — in particular ``run()`` refuses to build a
regular (non-editable) wheel.
"""

from __future__ import annotations

import os
import shutil

from setuptools import Command

__all__ = ["bdist_wheel"]

_WHEEL_FILE = """\
Wheel-Version: 1.0
Generator: repro-vendored-wheel-shim
Root-Is-Purelib: true
Tag: py3-none-any
"""


def _requires_to_metadata(requires_txt: str) -> list[str]:
    """Convert an egg-info ``requires.txt`` into core-metadata lines."""
    lines: list[str] = []
    extra = None
    for raw in requires_txt.splitlines():
        entry = raw.strip()
        if not entry:
            continue
        if entry.startswith("[") and entry.endswith("]"):
            section = entry[1:-1]
            extra, _, condition = section.partition(":")
            extra = extra.strip()
            if extra:
                lines.append(f"Provides-Extra: {extra}")
            extra = (extra, condition.strip())
            continue
        if extra is None:
            lines.append(f"Requires-Dist: {entry}")
            continue
        name, condition = extra
        markers = []
        if condition:
            markers.append(f"({condition})" if " or " in condition else condition)
        if name:
            markers.append(f'extra == "{name}"')
        marker = " and ".join(markers)
        lines.append(f"Requires-Dist: {entry}" + (f"; {marker}" if marker else ""))
    return lines


class bdist_wheel(Command):
    """Minimal stand-in for ``wheel.bdist_wheel.bdist_wheel``."""

    description = "vendored wheel shim (editable installs only)"
    user_options: list[tuple] = []

    def initialize_options(self) -> None:
        pass

    def finalize_options(self) -> None:
        pass

    def run(self) -> None:  # pragma: no cover - guarded usage
        raise RuntimeError(
            "the vendored wheel shim only supports editable installs; "
            "install the real 'wheel' package to build distributions"
        )

    # -- API used by setuptools' editable-install machinery ---------------
    def get_tag(self) -> tuple[str, str, str]:
        """Pure-Python projects are always ``py3-none-any``."""
        return ("py3", "none", "any")

    def write_wheelfile(self, dist_info_dir: str) -> None:
        with open(os.path.join(dist_info_dir, "WHEEL"), "w", encoding="utf-8") as fh:
            fh.write(_WHEEL_FILE)

    def egg2dist(self, egg_info_dir: str, dist_info_dir: str) -> None:
        """Convert an ``.egg-info`` directory into a ``.dist-info`` one."""
        if os.path.isdir(dist_info_dir):
            shutil.rmtree(dist_info_dir)
        os.makedirs(dist_info_dir)

        pkg_info_path = os.path.join(egg_info_dir, "PKG-INFO")
        with open(pkg_info_path, encoding="utf-8") as fh:
            metadata = fh.read().rstrip("\n").split("\n\n", 1)
        headers, body = metadata[0], metadata[1] if len(metadata) > 1 else ""

        requires_path = os.path.join(egg_info_dir, "requires.txt")
        if "Requires-Dist:" not in headers and os.path.isfile(requires_path):
            with open(requires_path, encoding="utf-8") as fh:
                extra_lines = _requires_to_metadata(fh.read())
            if extra_lines:
                headers = headers + "\n" + "\n".join(extra_lines)

        with open(os.path.join(dist_info_dir, "METADATA"), "w", encoding="utf-8") as fh:
            fh.write(headers + "\n")
            if body:
                fh.write("\n" + body + "\n")

        for name in ("entry_points.txt", "top_level.txt"):
            src = os.path.join(egg_info_dir, name)
            if os.path.isfile(src):
                shutil.copy2(src, os.path.join(dist_info_dir, name))

        # The real converter removes the egg-info dir; dist_info backs it
        # up beforehand when it wants to keep it.
        shutil.rmtree(egg_info_dir)
