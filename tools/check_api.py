#!/usr/bin/env python
"""Public-API surface checker: no undeclared breaking changes.

The repo's compatibility promise lives in the ``__all__`` lists of its
public modules — but nothing used to stop a refactor from silently
dropping a re-export, renaming a keyword argument, or changing a
default.  This tool snapshots the surface into ``API_SURFACE.json``
(committed at the repo root) and fails the build on any drift:

* every module in :data:`PUBLIC_MODULES` is imported and each name in
  its ``__all__`` is described — functions and methods by their exact
  :func:`inspect.signature` string, classes by constructor signature
  plus the sorted set of public members (methods, properties and
  dataclass fields), everything else by its type;
* the description is serialized as canonical JSON (sorted keys,
  deterministic — same discipline as every other artifact in the repo)
  and compared byte-for-byte against the committed snapshot;
* a mismatch prints a per-module diff (added / removed / changed
  names) and exits non-zero.

Intentional API changes are declared by regenerating the snapshot and
committing it alongside the code change — the diff of
``API_SURFACE.json`` then *is* the reviewable API change:

    python tools/check_api.py --write

Run:  python tools/check_api.py          (from the repo root or anywhere)
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import re
import sys
from pathlib import Path
from typing import Any

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
SNAPSHOT = REPO / "API_SURFACE.json"

#: Modules whose ``__all__`` is the compatibility promise.  Grow this
#: list when a new subsystem becomes public; never shrink it without a
#: deprecation cycle (see CONTRIBUTING.md).
PUBLIC_MODULES = (
    "repro",
    "repro.analysis",
    "repro.campaign",
    "repro.core",
    "repro.engine",
    "repro.experiments.io",
    "repro.faults",
    "repro.maxplus",
    "repro.objectives",
    "repro.search",
    "repro.telemetry",
)

#: Memory addresses in default-value reprs (``<object object at 0x...>``)
#: vary per process; strip them so the snapshot is deterministic.
_ADDR_RE = re.compile(r" at 0x[0-9a-fA-F]+")


def _signature(obj: Any) -> str | None:
    """``str(inspect.signature(obj))`` with addresses stripped, or None."""
    try:
        return _ADDR_RE.sub("", str(inspect.signature(obj)))
    except (ValueError, TypeError):
        return None


def _class_members(cls: type) -> dict[str, Any]:
    """Public members of ``cls``: name -> kind (+ signature for callables)."""
    names = {n for n in dir(cls) if not n.startswith("_")}
    names.update(getattr(cls, "__dataclass_fields__", {}))
    members: dict[str, Any] = {}
    for name in sorted(names):
        attr = inspect.getattr_static(cls, name, None)
        if isinstance(attr, property):
            members[name] = {"kind": "property"}
        elif isinstance(attr, (staticmethod, classmethod)):
            kind = "staticmethod" if isinstance(attr, staticmethod) else "classmethod"
            members[name] = {"kind": kind, "signature": _signature(attr.__func__)}
        elif callable(attr):
            members[name] = {"kind": "method", "signature": _signature(attr)}
        else:
            members[name] = {"kind": "attribute"}
    return members


def describe(obj: Any) -> dict[str, Any]:
    """A deterministic JSON-able descriptor of one exported object."""
    if inspect.isclass(obj):
        desc: dict[str, Any] = {"kind": "class", "signature": _signature(obj)}
        if issubclass(obj, BaseException):
            desc["kind"] = "exception"
        desc["members"] = _class_members(obj)
        return desc
    if inspect.isroutine(obj):
        return {"kind": "function", "signature": _signature(obj)}
    if inspect.ismodule(obj):
        return {"kind": "module"}
    return {"kind": "data", "type": type(obj).__name__}


def build_surface() -> dict[str, dict[str, Any]]:
    """module -> exported name -> descriptor, for every public module."""
    surface: dict[str, dict[str, Any]] = {}
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if not exported:
            raise SystemExit(f"check_api: {module_name} has no __all__")
        entry: dict[str, Any] = {}
        for name in sorted(exported):
            if not hasattr(module, name):
                raise SystemExit(
                    f"check_api: {module_name}.__all__ lists {name!r} "
                    "but the module does not define it"
                )
            entry[name] = describe(getattr(module, name))
        surface[module_name] = entry
    return surface


def render(surface: dict[str, dict[str, Any]]) -> str:
    """Canonical JSON text of the surface (sorted keys, one newline)."""
    return json.dumps(surface, indent=2, sort_keys=True) + "\n"


def diff_surfaces(
    old: dict[str, dict[str, Any]], new: dict[str, dict[str, Any]]
) -> list[str]:
    """Human-readable lines describing every difference (empty = clean)."""
    lines: list[str] = []
    for module in sorted(set(old) | set(new)):
        if module not in old:
            lines.append(f"{module}: module added to the public surface")
            continue
        if module not in new:
            lines.append(f"{module}: module removed from the public surface")
            continue
        before, after = old[module], new[module]
        for name in sorted(set(before) | set(after)):
            if name not in before:
                lines.append(f"{module}.{name}: added")
            elif name not in after:
                lines.append(f"{module}.{name}: removed")
            elif before[name] != after[name]:
                lines.append(
                    f"{module}.{name}: changed\n"
                    f"    was: {json.dumps(before[name], sort_keys=True)}\n"
                    f"    now: {json.dumps(after[name], sort_keys=True)}"
                )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write",
        action="store_true",
        help="regenerate API_SURFACE.json from the current tree",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(SRC))
    surface = build_surface()
    text = render(surface)

    if args.write:
        SNAPSHOT.write_text(text, newline="")
        n = sum(len(v) for v in surface.values())
        print(f"check_api: wrote {SNAPSHOT.name} ({len(surface)} modules, {n} names)")
        return 0

    if not SNAPSHOT.exists():
        print(
            "check_api: API_SURFACE.json missing - run "
            "`python tools/check_api.py --write` and commit it",
            file=sys.stderr,
        )
        return 1

    committed = json.loads(SNAPSHOT.read_text())
    lines = diff_surfaces(committed, surface)
    if lines:
        print(
            "check_api: the public API surface drifted from the committed "
            "API_SURFACE.json:\n",
            file=sys.stderr,
        )
        for line in lines:
            print(f"  {line}", file=sys.stderr)
        print(
            "\ncheck_api: if the change is intentional, regenerate the "
            "snapshot (`python tools/check_api.py --write`), commit it, and "
            "describe the change in the PR",
            file=sys.stderr,
        )
        return 1

    n = sum(len(v) for v in surface.values())
    print(f"check_api: OK ({len(surface)} modules, {n} exported names, no drift)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
