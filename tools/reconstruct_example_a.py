"""Constraint-search reconstruction of Example A's durations (Figure 2).

The available source text of the paper garbles Figure 2's numeric labels:
eighteen numbers are listed (7 computation times, 11 communication times)
but their association with nodes/edges is lost.  This script recovers the
assignment from every published fact:

* the 18 raw label values (Figure 2);
* Figure 9 groups {57, 68, 77} and {13, 157, 165} as the two senders'
  ``F_1`` transfer-time rows;
* OVERLAP: period = 189, critical resource = output port of P0
  (hence t(P0->P1) + t(P0->P2) = 378 = 186 + 192, the only label pair
  summing to 378);
* STRICT: M_ct = 215.8(3) attained by P2 — forcing t(P0->P2) = 192,
  comp(P2) = 128 and P2's row = {13, 157, 165} (derivation in
  EXPERIMENTS.md);
* STRICT: period = 230.7.

Remaining freedom (comp times of P0, P1, P3..P6, the three F2 transfer
times, and the receiver order of each sender row) is brute-forced below
with pure-arithmetic pre-filters; full strict-TPN critical-cycle checks
run only on the survivors.  All assignments matching every published
number are printed.

Run:  python tools/reconstruct_example_a.py
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from repro.algorithms.general_tpn import tpn_period
from repro.algorithms.overlap_poly import overlap_period
from repro.core.application import Application
from repro.core.cycle_time import cycle_times
from repro.core.instance import Instance
from repro.core.mapping import Mapping
from repro.core.platform import Platform
from repro.maxplus.cycle_ratio import max_cycle_ratio
from repro.maxplus.graph import RatioGraph

# -- fixed by the published constraints ---------------------------------
T01, T02 = 186.0, 192.0
C2 = 128.0
P1_ROW = (57.0, 68.0, 77.0)  # F1 times of sender P1 (receiver order tbd)
P2_ROW = (13.0, 157.0, 165.0)  # F1 times of sender P2 (receiver order tbd)

#: The remaining 18-label pool after removing the 8 fixed values and C2.
REMAINING = [147.0, 22.0, 104.0, 146.0, 23.0, 73.0, 73.0, 67.0, 126.0]

STRICT_MCT_TARGET = (215.75, 215.88)  # paper: 215.8 (=1295/6 = 215.8333)
STRICT_P_TARGET = (230.65, 230.75)  # paper: 230.7
OVERLAP_P = 189.0

MAPPING = Mapping([(0,), (1, 2), (3, 4, 5), (6,)])


def f1_torus_ratio(r1: tuple, r2: tuple) -> float:
    """Max cycle ratio of the 2x3 pattern graph of F1.

    Senders (P1, P2) x grid columns; grid column order follows the
    receivers' round-robin (step m_1 = 2 mod 3): receivers P3, P5, P4.
    Cell (alpha, beta): sender alpha, receiver index (2*beta) mod 3.
    """
    dur = np.zeros((2, 3))
    for beta in range(3):
        recv = (2 * beta) % 3
        dur[0, beta] = r1[recv]
        dur[1, beta] = r2[recv]
    edges = []
    cell = lambda a, b: a * 3 + b  # noqa: E731
    for a in range(2):
        for b in range(3):
            edges.append((cell(a, b), cell((a + 1) % 2, b), dur[a, b], 1 if a == 1 else 0))
            edges.append((cell(a, b), cell(a, (b + 1) % 3), dur[a, b], 1 if b == 2 else 0))
    return max_cycle_ratio(RatioGraph(6, edges)).value


def build_instance(comp: dict[int, float], f1_p1, f1_p2, f2) -> Instance:
    comm = {
        (0, 1): T01,
        (0, 2): T02,
        (1, 3): f1_p1[0], (1, 4): f1_p1[1], (1, 5): f1_p1[2],
        (2, 3): f1_p2[0], (2, 4): f1_p2[1], (2, 5): f1_p2[2],
        (3, 6): f2[0], (4, 6): f2[1], (5, 6): f2[2],
    }
    comp_times = np.ones(7)
    for u, t in comp.items():
        comp_times[u] = t
    comm_times = np.ones((7, 7))
    np.fill_diagonal(comm_times, 0.0)
    for (u, v), t in comm.items():
        comm_times[u, v] = t
    plat = Platform.from_comm_times(comp_times, comm_times)
    app = Application(works=[1.0] * 4, file_sizes=[1.0] * 3)
    return Instance(app, plat, MAPPING)


def strict_edges() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fixed strict-TPN topology of Example A's mapping.

    Returns ``(edge_src_transition, edge_dst_transition, edge_tokens)``;
    the 42 transition durations vary per candidate, the 60 places do not.
    """
    from repro.petri.builder import build_tpn

    inst = build_instance({u: 1.0 for u in range(7)}, (1, 1, 1), (1, 1, 1),
                          (1, 1, 1))
    net = build_tpn(inst, "strict")
    src = np.array([p.src for p in net.places])
    dst = np.array([p.dst for p in net.places])
    tok = np.array([p.tokens for p in net.places], dtype=float)
    return src, dst, tok


def duration_matrix(perms: np.ndarray, c0: float, r1, r2) -> np.ndarray:
    """Durations of the 42 transitions for each candidate row of ``perms``.

    Transition (row j, column c) has index ``7j + c``; round-robin rules
    give S1 -> P_{1 + j%2}, S2 -> P_{3 + j%3}.
    """
    B = perms.shape[0]
    c1s, c3s, c4s, c5s, c6s = (perms[:, i] for i in range(5))
    f2 = perms[:, 5:8]  # t36, t46, t56
    W = np.empty((B, 42))
    for j in range(6):
        base = 7 * j
        W[:, base + 0] = c0
        W[:, base + 1] = T01 if j % 2 == 0 else T02
        W[:, base + 2] = c1s if j % 2 == 0 else C2
        W[:, base + 3] = (r1 if j % 2 == 0 else r2)[j % 3]
        W[:, base + 4] = (c3s, c4s, c5s)[j % 3]
        W[:, base + 5] = f2[:, j % 3]
        W[:, base + 6] = c6s
    return W


def batch_positive_cycle(W: np.ndarray, lam: float, src: np.ndarray,
                         dst: np.ndarray, tok: np.ndarray) -> np.ndarray:
    """For each candidate row of ``W``: does the strict TPN have a cycle
    with mean ratio > lam?  Vectorized Bellman-Ford over all candidates."""
    B, n = W.shape[0], 42
    order = np.argsort(dst, kind="stable")
    src_s, dst_s = src[order], dst[order]
    present = np.unique(dst_s)
    starts_present = np.searchsorted(dst_s, present)
    rw = W[:, src_s] - lam * tok[order]  # edge weight = dur(src transition)
    pot = np.zeros((B, n))
    changed = np.zeros(B, dtype=bool)
    for _ in range(n + 1):
        contrib = pot[:, src_s] + rw
        gmax = np.maximum.reduceat(contrib, starts_present, axis=1)
        new = pot.copy()
        new[:, present] = np.maximum(pot[:, present], gmax)
        changed = (new != pot).any(axis=1)
        if not changed.any():
            return changed
        pot = new
    return changed


def verify_canonical() -> None:
    """Check the assignment shipped in repro.experiments.examples_paper
    against every published value."""
    from repro.experiments.examples_paper import example_a

    inst = example_a()
    ov = overlap_period(inst)
    strict = tpn_period(inst, "strict")
    rep_o = cycle_times(inst, "overlap")
    rep_s = cycle_times(inst, "strict")
    print("canonical assignment (shipped in the library):")
    print(f"  overlap period  = {ov.period:10.4f}   (paper: 189)")
    print(f"  overlap Mct     = {rep_o.mct:10.4f}   (paper: 189, P0 out)")
    print(f"  strict Mct      = {rep_s.mct:10.4f}   (paper: 215.8, P2)")
    print(f"  strict period   = {strict.period:10.4f}   (paper: 230.7)")
    print(f"  strict critical = {rep_s.critical_processors()}")
    assert abs(ov.period - 189.0) < 1e-9
    assert abs(rep_o.mct - 189.0) < 1e-9
    assert abs(rep_s.mct - 1295.0 / 6.0) < 1e-9
    assert abs(strict.period - 692.0 / 3.0) < 1e-9
    assert rep_s.critical_processors() == (2,)


def main() -> None:
    t0 = time.time()
    matches = []
    howard_runs = 0
    mct_lo, mct_hi = STRICT_MCT_TARGET
    sum_p1, sum_p2 = sum(P1_ROW), sum(P2_ROW)
    esrc, edst, etok = strict_edges()
    verify_canonical()

    # F1 overlap contribution only depends on the two receiver perms.
    good_f1 = [
        (r1, r2)
        for r1 in itertools.permutations(P1_ROW)
        for r2 in itertools.permutations(P2_ROW)
        if f1_torus_ratio(r1, r2) / 6.0 <= OVERLAP_P + 1e-9
    ]
    print(f"F1 receiver perms compatible with overlap period 189: "
          f"{len(good_f1)}/36")

    tried = 0
    for c0 in (22.0, 23.0):
        rest = REMAINING.copy()
        rest.remove(c0)
        # slots: c1, c3, c4, c5, c6, t36, t46, t56 — all perms as a matrix
        perms = np.array(sorted(set(itertools.permutations(rest))))
        tried += len(perms)
        c1s, c3s, c4s, c5s, c6s = (perms[:, i] for i in range(5))
        t36s, t46s, t56s = perms[:, 5], perms[:, 6], perms[:, 7]
        f2sums = t36s + t46s + t56s

        # overlap invariants + strict cycle-times independent of F1 perms
        ce0 = c0 + (T01 + T02) / 2
        ce1 = (T01 + c1s) / 2 + sum_p1 / 6
        ce2 = (T02 + C2) / 2 + sum_p2 / 6  # 215.8333 by construction
        ce6 = f2sums / 3 + c6s
        base_ok = (
            (np.maximum(c1s, C2) / 2 <= OVERLAP_P)
            & (np.maximum.reduce([c3s, c4s, c5s]) / 3 <= OVERLAP_P)
            & (c6s <= OVERLAP_P)
            & (f2sums / 3 <= OVERLAP_P)
            & (ce0 <= mct_hi)
            & (ce1 <= mct_hi)
            & (ce6 <= mct_hi)
        )
        base_max = np.maximum.reduce([
            np.full_like(c1s, ce0), ce1, np.full_like(c1s, ce2), ce6
        ])

        for r1, r2 in good_f1:
            rec = [(r1[k] + r2[k]) / 6 for k in range(3)]
            ces3 = rec[0] + c3s / 3 + t36s / 3
            ces4 = rec[1] + c4s / 3 + t46s / 3
            ces5 = rec[2] + c5s / 3 + t56s / 3
            mct = np.maximum.reduce([base_max, ces3, ces4, ces5])
            mask = base_ok & (mct >= mct_lo) & (mct <= mct_hi)
            cand_idx = np.flatnonzero(mask)
            if cand_idx.size == 0:
                continue
            # vectorized strict-period window test: the TPN ratio lambda
            # (= 6 * period) must satisfy lambda > 6*230.65 (positive
            # cycle at the low bound) and lambda <= 6*230.75 (no positive
            # cycle at the high bound).
            W = duration_matrix(perms[cand_idx], c0, r1, r2)
            above_lo = batch_positive_cycle(W, 6 * STRICT_P_TARGET[0],
                                            esrc, edst, etok)
            above_hi = batch_positive_cycle(W, 6 * STRICT_P_TARGET[1],
                                            esrc, edst, etok)
            survivors = cand_idx[above_lo & ~above_hi]
            matches.append(((c0, r1, r2), survivors.size))
            howard_runs += int(cand_idx.size)

    n_solutions = sum(count for _, count in matches)
    by_c0 = {}
    for (c0, _, _), count in matches:
        by_c0[c0] = by_c0.get(c0, 0) + count
    print(f"\nsearched {tried} value assignments x 36 receiver orders "
          f"({howard_runs} strict-period window tests) in "
          f"{time.time() - t0:.1f}s")
    print(f"assignments matching EVERY published value: {n_solutions}")
    print(f"  by comp(P0): {by_c0}")
    print(
        "\nConclusion: the published numbers pin t(P0->P1)=186, "
        "t(P0->P2)=192,\ncomp(P2)=128, P2's F1 row {13,157,165} and "
        "comp(P0)=22 exactly (the strict\ncritical cycle traverses only "
        "those values), while the remaining labels\nonly face inequality "
        "constraints — the library ships one canonical\nassignment of "
        "Figure 2's 18-label multiset satisfying all of them."
    )


if __name__ == "__main__":
    main()
